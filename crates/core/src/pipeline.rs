//! End-to-end profile-guided prefetching pipeline: instrument → run
//! (train input) → feed back → transform → run (reference input), plus the
//! overhead measurements of §4.2.

use crate::classify::{classify, Classification};
use crate::config::PrefetchConfig;
use crate::error::PipelineError;
use crate::instrument::{instrument, instrument_edges_only, instrument_two_pass, select_two_pass};
use crate::obs::Registry;
use crate::prefetch::{apply_prefetching, PrefetchReport};
use crate::select::ProfilingMethod;
use stride_ir::Module;
use stride_memsim::{CacheHierarchy, HierarchyConfig, HierarchyStats};
use stride_profiling::{
    EdgeProfile, FreqSource, ProfilerRuntime, StrideProfConfig, StrideProfStats, StrideProfile,
};
use stride_vm::{NullRuntime, RunResult, Vm, VmConfig};

/// The profiling variants of the evaluation (§4): the four instrumentation
/// methods with and without sampling, plus the two-pass baseline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProfilingVariant {
    /// Integrated edge-check (guarded) profiling.
    EdgeCheck,
    /// Unguarded profiling of all in-loop loads.
    NaiveLoop,
    /// Unguarded profiling of all loads.
    NaiveAll,
    /// Edge-check with chunk + fine sampling.
    SampleEdgeCheck,
    /// Naive-loop with sampling.
    SampleNaiveLoop,
    /// Naive-all with sampling.
    SampleNaiveAll,
    /// Block-check (guarded by block counters).
    BlockCheck,
    /// Block-check with sampling.
    SampleBlockCheck,
    /// The separate-pass baseline the paper argues against (§3.2): a
    /// frequency-profiling run followed by a stride run restricted to
    /// high-trip-count loops.
    TwoPass,
}

impl ProfilingVariant {
    /// The six variants evaluated in Figs. 16 and 20–22, in the paper's
    /// order.
    pub const EVALUATED: [ProfilingVariant; 6] = [
        ProfilingVariant::EdgeCheck,
        ProfilingVariant::NaiveLoop,
        ProfilingVariant::NaiveAll,
        ProfilingVariant::SampleEdgeCheck,
        ProfilingVariant::SampleNaiveLoop,
        ProfilingVariant::SampleNaiveAll,
    ];

    /// The underlying instrumentation method.
    pub fn method(self) -> ProfilingMethod {
        match self {
            ProfilingVariant::EdgeCheck | ProfilingVariant::SampleEdgeCheck => {
                ProfilingMethod::EdgeCheck
            }
            ProfilingVariant::NaiveLoop
            | ProfilingVariant::SampleNaiveLoop
            | ProfilingVariant::TwoPass => ProfilingMethod::NaiveLoop,
            ProfilingVariant::NaiveAll | ProfilingVariant::SampleNaiveAll => {
                ProfilingMethod::NaiveAll
            }
            ProfilingVariant::BlockCheck | ProfilingVariant::SampleBlockCheck => {
                ProfilingMethod::BlockCheck
            }
        }
    }

    /// True if the runtime samples (Fig. 9).
    pub fn sampled(self) -> bool {
        matches!(
            self,
            ProfilingVariant::SampleEdgeCheck
                | ProfilingVariant::SampleNaiveLoop
                | ProfilingVariant::SampleNaiveAll
                | ProfilingVariant::SampleBlockCheck
        )
    }

    /// The `strideProf` runtime configuration: the enhanced Fig. 7 routine,
    /// with Fig. 9 sampling for the `sample-*` variants.
    pub fn stride_config(self) -> StrideProfConfig {
        if self.sampled() {
            StrideProfConfig::sampled()
        } else {
            StrideProfConfig::enhanced()
        }
    }

    /// Which counter space feeds the frequency-derived quantities.
    pub fn freq_source(self) -> FreqSource {
        match self.method() {
            ProfilingMethod::BlockCheck => FreqSource::Blocks,
            _ => FreqSource::Edges,
        }
    }
}

impl std::str::FromStr for ProfilingVariant {
    type Err = String;

    /// Parses the hyphenated names printed by `Display` (CLI flags and the
    /// profile daemon's wire protocol).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "edge-check" => Ok(ProfilingVariant::EdgeCheck),
            "naive-loop" => Ok(ProfilingVariant::NaiveLoop),
            "naive-all" => Ok(ProfilingVariant::NaiveAll),
            "sample-edge-check" => Ok(ProfilingVariant::SampleEdgeCheck),
            "sample-naive-loop" => Ok(ProfilingVariant::SampleNaiveLoop),
            "sample-naive-all" => Ok(ProfilingVariant::SampleNaiveAll),
            "block-check" => Ok(ProfilingVariant::BlockCheck),
            "sample-block-check" => Ok(ProfilingVariant::SampleBlockCheck),
            "two-pass" => Ok(ProfilingVariant::TwoPass),
            _ => Err(format!("unknown profiling variant `{s}`")),
        }
    }
}

impl std::fmt::Display for ProfilingVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProfilingVariant::EdgeCheck => "edge-check",
            ProfilingVariant::NaiveLoop => "naive-loop",
            ProfilingVariant::NaiveAll => "naive-all",
            ProfilingVariant::SampleEdgeCheck => "sample-edge-check",
            ProfilingVariant::SampleNaiveLoop => "sample-naive-loop",
            ProfilingVariant::SampleNaiveAll => "sample-naive-all",
            ProfilingVariant::BlockCheck => "block-check",
            ProfilingVariant::SampleBlockCheck => "sample-block-check",
            ProfilingVariant::TwoPass => "two-pass",
        };
        f.write_str(s)
    }
}

/// Pipeline-wide configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineConfig {
    /// Feedback thresholds and prefetch distances.
    pub prefetch: PrefetchConfig,
    /// VM cost model and limits.
    pub vm: VmConfig,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
}

/// Everything a profiling run produced.
#[derive(Clone, Debug)]
pub struct ProfileOutcome {
    /// The frequency profile (edge or block counters per the variant).
    pub edge: EdgeProfile,
    /// The stride profile.
    pub stride: StrideProfile,
    /// Aggregate `strideProf` statistics (Figs. 21/22).
    pub stats: StrideProfStats,
    /// The instrumented run itself (its `cycles` include profiling
    /// overhead).
    pub run: RunResult,
    /// Counter space of `edge`.
    pub source: FreqSource,
}

/// Runs `module` uninstrumented over the cache hierarchy.
///
/// # Errors
///
/// Propagates the VM failure as [`PipelineError::Vm`].
pub fn run_uninstrumented(
    module: &Module,
    args: &[i64],
    config: &PipelineConfig,
) -> Result<(RunResult, HierarchyStats), PipelineError> {
    let mut vm = Vm::new(module, config.vm);
    let mut hierarchy = CacheHierarchy::new(config.hierarchy);
    let run = vm.run(args, &mut hierarchy, &mut NullRuntime)?;
    Ok((run, hierarchy.stats()))
}

/// Runs the module with edge-frequency instrumentation only (the overhead
/// baseline of §4.2).
///
/// # Errors
///
/// Propagates the VM failure as [`PipelineError::Vm`].
pub fn run_edge_only(
    module: &Module,
    args: &[i64],
    config: &PipelineConfig,
) -> Result<(EdgeProfile, RunResult), PipelineError> {
    let instrumented = instrument_edges_only(module);
    let mut vm = Vm::new(&instrumented, config.vm);
    let mut hierarchy = CacheHierarchy::new(config.hierarchy);
    let mut runtime = ProfilerRuntime::edge_only(module);
    let run = vm.run(args, &mut hierarchy, &mut runtime)?;
    let (edge, _, _) = runtime.finish();
    Ok((edge, run))
}

/// Runs one integrated (or two-pass) profiling pass over the train input.
///
/// # Errors
///
/// Propagates the VM failure as [`PipelineError::Vm`].
pub fn run_profiling(
    module: &Module,
    args: &[i64],
    variant: ProfilingVariant,
    config: &PipelineConfig,
) -> Result<ProfileOutcome, PipelineError> {
    if variant == ProfilingVariant::TwoPass {
        // Pass 1: frequency profile.
        let (edge, _run1) = run_edge_only(module, args, config)?;
        // Pass 2: stride profiling of trip-count-qualified loads.
        let selection = select_two_pass(module, &edge, &config.prefetch);
        let instrumented = instrument_two_pass(module, &selection);
        let mut vm = Vm::new(&instrumented, config.vm);
        let mut hierarchy = CacheHierarchy::new(config.hierarchy);
        let mut runtime =
            ProfilerRuntime::new(module, selection.slot_sites(), variant.stride_config());
        let run = vm.run(args, &mut hierarchy, &mut runtime)?;
        let (edge2, stride, stats) = runtime.finish();
        // The frequency profile of the second pass equals the first; use
        // the fresh one (it includes both counter spaces consistently).
        let _ = edge;
        return Ok(ProfileOutcome {
            edge: edge2,
            stride,
            stats,
            run,
            source: FreqSource::Edges,
        });
    }

    let instrumented = instrument(module, variant.method(), &config.prefetch);
    let mut vm = Vm::new(&instrumented.module, config.vm);
    let mut hierarchy = CacheHierarchy::new(config.hierarchy);
    let mut runtime = ProfilerRuntime::new(
        module,
        instrumented.selection.slot_sites(),
        variant.stride_config(),
    );
    let run = vm.run(args, &mut hierarchy, &mut runtime)?;
    let (edge, stride, stats) = runtime.finish();
    Ok(ProfileOutcome {
        edge,
        stride,
        stats,
        run,
        source: variant.freq_source(),
    })
}

/// Applies the feedback pass with (possibly mixed) profiles: classify with
/// `freq`/`stride` and transform `module`.
pub fn prefetch_with_profiles(
    module: &Module,
    freq: &EdgeProfile,
    source: FreqSource,
    stride: &StrideProfile,
    config: &PipelineConfig,
) -> (Module, Classification, PrefetchReport) {
    let classification = classify(module, stride, freq, source, &config.prefetch);
    let (mut transformed, report) = apply_prefetching(module, &classification, &config.prefetch);
    if config.prefetch.enable_dependent_prefetch {
        // §6 future work #2: compose dependence-based prefetching on top,
        // skipping loads the stride transformation already covers. The
        // pass runs on the stride-transformed module so both sets of
        // prefetches coexist.
        let (with_dependent, _) = crate::dependent::apply_dependent_prefetching(
            &transformed,
            &classification,
            &config.prefetch,
        );
        transformed = with_dependent;
    }
    (transformed, classification, report)
}

/// The speedup experiment of Fig. 16 for one benchmark and one profiling
/// variant.
#[derive(Clone, Debug)]
pub struct SpeedupOutcome {
    /// Cycles of the unmodified binary on the reference input.
    pub baseline_cycles: u64,
    /// Cycles of the prefetching binary on the reference input.
    pub prefetch_cycles: u64,
    /// `baseline / prefetch` (>1 means prefetching won).
    pub speedup: f64,
    /// The feedback classification.
    pub classification: Classification,
    /// What the transformation inserted.
    pub report: PrefetchReport,
    /// Hierarchy statistics of the baseline run.
    pub baseline_mem: HierarchyStats,
    /// Hierarchy statistics of the prefetching run.
    pub prefetch_mem: HierarchyStats,
    /// Fused superinstructions dispatched across both reference runs
    /// (interpreter meta-counter, not a logical output).
    pub vm_fused_dispatch: u64,
    /// Last-line load fast-path hits across both reference runs
    /// (interpreter meta-counter, not a logical output).
    pub vm_fastpath_load_hits: u64,
    /// Self-profiling probes fired across both reference runs (zero
    /// unless `stride-vm` is built with `vm-selfprof`).
    pub vm_selfprof_overhead_cycles: u64,
}

/// Profiles on `train_args`, feeds back, and compares uninstrumented
/// baseline vs. prefetching binaries on `ref_args` (the §4.1 methodology).
///
/// # Errors
///
/// Propagates the first failing run as [`PipelineError::Vm`].
pub fn measure_speedup(
    module: &Module,
    train_args: &[i64],
    ref_args: &[i64],
    variant: ProfilingVariant,
    config: &PipelineConfig,
) -> Result<SpeedupOutcome, PipelineError> {
    let outcome = run_profiling(module, train_args, variant, config)?;
    let (transformed, classification, report) = prefetch_with_profiles(
        module,
        &outcome.edge,
        outcome.source,
        &outcome.stride,
        config,
    );
    let (base, base_mem) = run_uninstrumented(module, ref_args, config)?;
    let (pf, pf_mem) = run_uninstrumented(&transformed, ref_args, config)?;
    Ok(SpeedupOutcome {
        baseline_cycles: base.cycles,
        prefetch_cycles: pf.cycles,
        speedup: base.cycles as f64 / pf.cycles.max(1) as f64,
        classification,
        report,
        baseline_mem: base_mem,
        prefetch_mem: pf_mem,
        vm_fused_dispatch: base.fused_dispatch + pf.fused_dispatch,
        vm_fastpath_load_hits: base.fastpath_load_hits + pf.fastpath_load_hits,
        vm_selfprof_overhead_cycles: base.selfprof_overhead_cycles + pf.selfprof_overhead_cycles,
    })
}

/// The profiling-overhead experiment of Figs. 20–22 for one benchmark and
/// one variant.
#[derive(Clone, Debug)]
pub struct OverheadOutcome {
    /// Cycles with edge instrumentation only.
    pub edge_cycles: u64,
    /// Cycles with integrated edge + stride instrumentation.
    pub integrated_cycles: u64,
    /// `(integrated - edge) / edge` (Fig. 20's ratio).
    pub overhead: f64,
    /// Fraction of dynamic load references processed by `strideProf`
    /// after sampling (Fig. 21).
    pub strideprof_fraction: f64,
    /// Fraction of dynamic load references reaching the LFU routine
    /// (Fig. 22).
    pub lfu_fraction: f64,
    /// Fraction of references on which `strideProf` was invoked at all
    /// (before sampling; for guarded methods this is the guard pass rate).
    pub call_fraction: f64,
}

/// Measures profiling overhead on the train input (§4.2).
///
/// # Errors
///
/// Propagates the first failing run as [`PipelineError::Vm`].
pub fn measure_overhead(
    module: &Module,
    train_args: &[i64],
    variant: ProfilingVariant,
    config: &PipelineConfig,
) -> Result<OverheadOutcome, PipelineError> {
    let (_, edge_run) = run_edge_only(module, train_args, config)?;
    let outcome = run_profiling(module, train_args, variant, config)?;
    let loads = outcome.run.loads.max(1) as f64;
    Ok(OverheadOutcome {
        edge_cycles: edge_run.cycles,
        integrated_cycles: outcome.run.cycles,
        overhead: (outcome.run.cycles as f64 - edge_run.cycles as f64)
            / edge_run.cycles.max(1) as f64,
        strideprof_fraction: outcome.stats.processed as f64 / loads,
        lfu_fraction: outcome.stats.lfu_inserts as f64 / loads,
        call_fraction: outcome.stats.calls as f64 / loads,
    })
}

// ---------------------------------------------------------------------
// Observability: recording pipeline outcomes into a metrics registry.
//
// All quantities below are *logical* — VM cycles (fuel), load counts,
// cache events — never wall-clock, so a registry fed only through these
// helpers snapshots byte-identically regardless of scheduling.
// ---------------------------------------------------------------------

/// Records one cache-hierarchy statistics block under `prefix`.
pub fn observe_hierarchy(reg: &Registry, prefix: &str, mem: &HierarchyStats) {
    reg.add(&format!("{prefix}.mem.l1_hits"), mem.l1_hits);
    reg.add(&format!("{prefix}.mem.l2_hits"), mem.l2_hits);
    reg.add(&format!("{prefix}.mem.l3_hits"), mem.l3_hits);
    reg.add(&format!("{prefix}.mem.accesses"), mem.mem_accesses);
    reg.add(&format!("{prefix}.mem.tlb_misses"), mem.tlb_misses);
    reg.add(&format!("{prefix}.mem.way_hint_hits"), mem.way_hint_hits);
    reg.add(&format!("{prefix}.prefetch.issued"), mem.prefetches_issued);
    reg.add(
        &format!("{prefix}.prefetch.dropped"),
        mem.prefetches_dropped,
    );
    reg.add(&format!("{prefix}.prefetch.timely"), mem.prefetch_timely);
    reg.add(&format!("{prefix}.prefetch.late"), mem.prefetch_late);
}

/// Records one pipeline stage's fuel-denominated timing: a cycle counter,
/// the shared per-stage histogram, and a trace event whose logical clock
/// is the stage's own cycle count.
fn observe_stage(reg: &Registry, label: &'static str, cycles: u64) {
    reg.add(&format!("pipeline.stage.{label}.cycles"), cycles);
    reg.histogram("pipeline.stage.cycles").observe(cycles);
    reg.trace(crate::obs::TraceEvent {
        clock: cycles,
        label: "pipeline.stage",
        a: cycles,
        b: 0,
    });
}

/// Records a profiling run: stage timing plus the `strideProf` and LFU
/// observability counters (Figs. 21/22 inputs).
pub fn observe_profile(reg: &Registry, outcome: &ProfileOutcome) {
    observe_stage(reg, "profile", outcome.run.cycles);
    reg.add("profile.run.loads", outcome.run.loads);
    reg.add("profile.strideprof.calls", outcome.stats.calls);
    reg.add("profile.strideprof.processed", outcome.stats.processed);
    reg.add("profile.strideprof.lfu_inserts", outcome.stats.lfu_inserts);
    reg.add("profile.lfu.hits", outcome.stats.lfu.hits);
    reg.add("profile.lfu.evictions", outcome.stats.lfu.evictions);
    reg.add("profile.lfu.merges", outcome.stats.lfu.merges);
    observe_vm_meta(
        reg,
        outcome.run.fused_dispatch,
        outcome.run.fastpath_load_hits,
        outcome.run.selfprof_overhead_cycles,
    );
}

/// Records the interpreter's own meta-counters (dispatch fusion, memory
/// fast path, self-profiling probes). These describe how the VM executed,
/// not what the guest program did, so they sit in a dedicated `vm.*`
/// namespace and are excluded from the byte-identity contract.
fn observe_vm_meta(reg: &Registry, fused: u64, fastpath: u64, selfprof: u64) {
    reg.add("vm.fused_dispatch", fused);
    reg.add("vm.fastpath_load_hits", fastpath);
    reg.add("vm.selfprof_overhead_cycles", selfprof);
}

/// Records a Fig. 16 speedup experiment: baseline and prefetch stage
/// timings plus both runs' hierarchy statistics.
pub fn observe_speedup(reg: &Registry, outcome: &SpeedupOutcome) {
    observe_stage(reg, "baseline", outcome.baseline_cycles);
    observe_stage(reg, "prefetch", outcome.prefetch_cycles);
    reg.add(
        "speedup.prefetches_inserted",
        outcome.report.prefetches_inserted as u64,
    );
    reg.add(
        "speedup.classified_loads",
        outcome.classification.loads.len() as u64,
    );
    observe_hierarchy(reg, "speedup.baseline", &outcome.baseline_mem);
    observe_hierarchy(reg, "speedup.prefetch", &outcome.prefetch_mem);
    observe_vm_meta(
        reg,
        outcome.vm_fused_dispatch,
        outcome.vm_fastpath_load_hits,
        outcome.vm_selfprof_overhead_cycles,
    );
}

/// Records a Figs. 20–22 overhead experiment: edge-only and integrated
/// stage timings plus the instrumentation-overhead delta.
pub fn observe_overhead(reg: &Registry, outcome: &OverheadOutcome) {
    observe_stage(reg, "edge_only", outcome.edge_cycles);
    observe_stage(reg, "integrated", outcome.integrated_cycles);
    reg.add(
        "overhead.extra_cycles",
        outcome
            .integrated_cycles
            .saturating_sub(outcome.edge_cycles),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{ModuleBuilder, Operand};

    /// A benchmark with a strong stride pattern: walks a pre-linked list
    /// laid out sequentially by allocation order (the Fig. 1 shape).
    /// `param(0)` = node count, `param(1)` = traversals.
    fn list_walk_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("head", 8);
        let f = mb.declare_function("main", 2);
        let mut fb = mb.function(f);
        let n = fb.param(0);
        let reps = fb.param(1);
        let headp = fb.global_addr(g);

        // Build the list: nodes of 48 bytes, next at offset 0, payload at 8.
        let prev = fb.mov(0i64);
        fb.counted_loop(n, |fb, i| {
            let node = fb.alloc(48i64);
            fb.store(i, node, 8);
            fb.store(0i64, node, 0);
            // prev != 0 ? prev->next = node : head = node
            let is_first = fb.cmp(stride_ir::CmpOp::Eq, prev, 0i64);
            let then_b = fb.new_block();
            let else_b = fb.new_block();
            let join = fb.new_block();
            fb.cond_br(is_first, then_b, else_b);
            fb.switch_to(then_b);
            fb.store(node, headp, 0);
            fb.br(join);
            fb.switch_to(else_b);
            fb.store(node, prev, 0);
            fb.br(join);
            fb.switch_to(join);
            fb.mov_to(prev, node);
        });

        // Walk it `reps` times, loading payloads.
        let sum = fb.mov(0i64);
        fb.counted_loop(reps, |fb, _| {
            let (p, _) = fb.load(headp, 0);
            fb.while_nonzero(p, |fb, p| {
                let (v, _) = fb.load(p, 8);
                fb.bin_to(sum, stride_ir::BinOp::Add, sum, v);
                fb.load_to(p, p, 0);
            });
        });
        fb.ret(Some(Operand::Reg(sum)));
        mb.set_entry(f);
        mb.finish()
    }

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            prefetch: PrefetchConfig {
                thresholds: crate::ClassifyThresholds {
                    frequency_threshold: 500,
                    ..crate::ClassifyThresholds::paper()
                },
                ..PrefetchConfig::paper()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn variant_metadata() {
        assert_eq!(ProfilingVariant::EVALUATED.len(), 6);
        assert!(ProfilingVariant::SampleEdgeCheck.sampled());
        assert!(!ProfilingVariant::EdgeCheck.sampled());
        assert_eq!(
            ProfilingVariant::BlockCheck.freq_source(),
            FreqSource::Blocks
        );
        assert_eq!(ProfilingVariant::TwoPass.to_string(), "two-pass");
    }

    #[test]
    fn profiling_discovers_the_list_stride() {
        let m = list_walk_module();
        let cfg = small_config();
        let outcome =
            run_profiling(&m, &[2000, 3], ProfilingVariant::EdgeCheck, &cfg).expect("run");
        // Some load must show a dominant 48-byte stride.
        let found = outcome
            .stride
            .iter()
            .any(|(_, _, p)| p.top1().map(|(s, _)| s) == Some(48) && p.top1_ratio() > 0.9);
        assert!(found, "48-byte stride not discovered");
    }

    #[test]
    fn speedup_on_strided_workload() {
        let m = list_walk_module();
        let cfg = small_config();
        let out = measure_speedup(
            &m,
            &[2000, 3],
            &[8000, 4],
            ProfilingVariant::EdgeCheck,
            &cfg,
        )
        .expect("pipeline");
        assert!(
            out.speedup > 1.02,
            "expected speedup on a strongly-strided workload, got {}",
            out.speedup
        );
        assert!(out.report.prefetches_inserted > 0);
        assert!(out.prefetch_mem.prefetches_issued > 0);
    }

    #[test]
    fn edge_check_is_cheaper_than_naive_all() {
        let m = list_walk_module();
        let cfg = small_config();
        let ec = measure_overhead(&m, &[3000, 3], ProfilingVariant::EdgeCheck, &cfg).unwrap();
        let na = measure_overhead(&m, &[3000, 3], ProfilingVariant::NaiveAll, &cfg).unwrap();
        assert!(
            ec.overhead < na.overhead,
            "edge-check {} !< naive-all {}",
            ec.overhead,
            na.overhead
        );
        assert!(na.call_fraction > 0.9, "naive-all must see ~100% of loads");
        assert!(ec.call_fraction < na.call_fraction);
    }

    #[test]
    fn sampling_reduces_overhead() {
        let m = list_walk_module();
        let cfg = small_config();
        let plain = measure_overhead(&m, &[3000, 5], ProfilingVariant::NaiveLoop, &cfg).unwrap();
        let sampled =
            measure_overhead(&m, &[3000, 5], ProfilingVariant::SampleNaiveLoop, &cfg).unwrap();
        assert!(
            sampled.overhead < plain.overhead,
            "sampled {} !< plain {}",
            sampled.overhead,
            plain.overhead
        );
        assert!(sampled.strideprof_fraction < plain.strideprof_fraction);
    }

    #[test]
    fn observed_metrics_snapshot_is_deterministic() {
        let m = list_walk_module();
        let cfg = small_config();
        let snapshot_of = || {
            let reg = Registry::new();
            let outcome =
                run_profiling(&m, &[1000, 2], ProfilingVariant::EdgeCheck, &cfg).expect("run");
            observe_profile(&reg, &outcome);
            let speedup = measure_speedup(
                &m,
                &[1000, 2],
                &[2000, 2],
                ProfilingVariant::EdgeCheck,
                &cfg,
            )
            .expect("speedup");
            observe_speedup(&reg, &speedup);
            let overhead =
                measure_overhead(&m, &[1000, 2], ProfilingVariant::EdgeCheck, &cfg).expect("ovh");
            observe_overhead(&reg, &overhead);
            reg.snapshot_text()
        };
        let a = snapshot_of();
        let b = snapshot_of();
        assert_eq!(a, b, "re-running the pipeline must reproduce the metrics");
        assert!(a.contains("counter pipeline.stage.profile.cycles "));
        assert!(a.contains("counter profile.lfu.hits "));
        assert!(a.contains("counter speedup.prefetch.mem.way_hint_hits "));
        assert!(a.contains("histogram pipeline.stage.cycles "));
        assert!(a.contains("trace "));
        assert!(a.contains("counter vm.fused_dispatch "));
        assert!(a.contains("counter vm.fastpath_load_hits "));
        assert!(a.contains("counter vm.selfprof_overhead_cycles "));
    }

    #[test]
    fn vm_meta_counters_report_real_activity() {
        let m = list_walk_module();
        let cfg = small_config();
        let speedup = measure_speedup(
            &m,
            &[1000, 2],
            &[2000, 2],
            ProfilingVariant::EdgeCheck,
            &cfg,
        )
        .expect("speedup");
        assert!(
            speedup.vm_fused_dispatch > 0,
            "list walk dispatches fused superinstructions"
        );
        assert!(
            speedup.vm_fastpath_load_hits > 0,
            "sequential list layout repeats cache lines"
        );
        #[cfg(not(feature = "vm-selfprof"))]
        assert_eq!(speedup.vm_selfprof_overhead_cycles, 0);
    }

    #[test]
    fn two_pass_matches_naive_loop_selection() {
        // §4.1: "the two-pass method prefetches the same set of loads as
        // the naive-loop method."
        let m = list_walk_module();
        let cfg = small_config();
        let tp = measure_speedup(&m, &[2000, 3], &[4000, 3], ProfilingVariant::TwoPass, &cfg)
            .expect("two-pass");
        let nl = measure_speedup(
            &m,
            &[2000, 3],
            &[4000, 3],
            ProfilingVariant::NaiveLoop,
            &cfg,
        )
        .expect("naive-loop");
        let sites = |c: &Classification| {
            let mut v: Vec<_> = c.loads.iter().map(|l| (l.func, l.site)).collect();
            v.sort();
            v
        };
        assert_eq!(sites(&tp.classification), sites(&nl.classification));
    }

    #[test]
    fn block_check_classifies_like_edge_check() {
        let m = list_walk_module();
        let cfg = small_config();
        let ec = measure_speedup(
            &m,
            &[2000, 3],
            &[4000, 3],
            ProfilingVariant::EdgeCheck,
            &cfg,
        )
        .expect("edge-check");
        let bc = measure_speedup(
            &m,
            &[2000, 3],
            &[4000, 3],
            ProfilingVariant::BlockCheck,
            &cfg,
        )
        .expect("block-check");
        let sites = |c: &Classification| {
            let mut v: Vec<_> = c.loads.iter().map(|l| (l.func, l.site)).collect();
            v.sort();
            v
        };
        assert_eq!(sites(&ec.classification), sites(&bc.classification));
    }
}
