//! Parallel runs must be byte-identical to serial runs: the figure output
//! is a reproduction artifact, so `--jobs` may only change wall-clock,
//! never a single byte of what is printed.

use std::process::Command;

fn repro_stdout(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn full_figure_output_is_identical_at_jobs_1_and_8() {
    let serial = repro_stdout(&["--scale", "test", "--jobs", "1"]);
    let parallel = repro_stdout(&["--scale", "test", "--jobs", "8"]);
    assert!(!serial.is_empty(), "repro printed nothing");
    assert_eq!(
        serial, parallel,
        "figure output must not depend on the worker count"
    );
}

#[test]
fn single_figure_output_is_identical_across_jobs() {
    // Figure 16 exercises the widest fan-out (12 workloads x variants).
    let serial = repro_stdout(&["--scale", "test", "--figure", "16", "--jobs", "1"]);
    for jobs in ["2", "5", "8"] {
        let parallel = repro_stdout(&["--scale", "test", "--figure", "16", "--jobs", jobs]);
        assert_eq!(serial, parallel, "figure 16 differs at --jobs {jobs}");
    }
}

#[test]
fn fault_campaign_report_is_identical_across_jobs_and_reruns() {
    let run = |jobs: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_faultsim"))
            .args(["--scale", "test", "--seed", "9", "--jobs", jobs])
            .output()
            .expect("run faultsim");
        assert!(
            out.status.success(),
            "faultsim --jobs {jobs} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = run("1");
    assert!(!serial.is_empty(), "faultsim printed nothing");
    let report = String::from_utf8_lossy(&serial).into_owned();
    assert!(
        report.contains("0 panic(s), 0 invariant violation(s)"),
        "campaign must complete without panics or violations, got:\n{report}"
    );
    for jobs in ["4", "8"] {
        assert_eq!(
            run(jobs),
            serial,
            "campaign report differs at --jobs {jobs}"
        );
    }
    // Rerunning the same seed reproduces the report byte for byte.
    assert_eq!(run("1"), serial, "same seed must reproduce the report");
}

#[test]
fn injected_failure_yields_partial_results_identically_across_jobs() {
    // Force one workload to die mid-run; every other figure row must
    // still be emitted, plus a structured `!!` diagnostic for the
    // casualty — and the whole partial report must not depend on the
    // worker count.
    let inject = "seed=3;fuel=100@181.mcf";
    let serial = repro_stdout(&[
        "--scale", "test", "--figure", "16", "--inject", inject, "--jobs", "1",
    ]);
    let text = String::from_utf8_lossy(&serial).into_owned();
    assert!(
        text.contains("!! 181.mcf"),
        "missing structured diagnostic for the injected failure:\n{text}"
    );
    assert!(
        text.contains("budget exhausted"),
        "diagnostic should carry the VM error detail:\n{text}"
    );
    assert!(
        text.contains("197.parser") && text.contains("254.gap"),
        "sibling workloads must still produce rows:\n{text}"
    );
    assert!(
        !text.lines().any(|l| l.contains("181.mcf")
            && !l.starts_with("!!")
            && !l.starts_with("fault plan:")),
        "the failed workload must not contribute a data row:\n{text}"
    );
    for jobs in ["4", "8"] {
        let parallel = repro_stdout(&[
            "--scale", "test", "--figure", "16", "--inject", inject, "--jobs", jobs,
        ]);
        assert_eq!(parallel, serial, "partial report differs at --jobs {jobs}");
    }
}

#[test]
fn metrics_snapshot_is_identical_across_jobs() {
    // The observability snapshot is denominated purely in logical units
    // (simulated loads, cache hit counts, static instruction counts), so
    // like the figures it must not depend on the worker count.
    let dir =
        std::env::temp_dir().join(format!("repro-metrics-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let mut snapshots = Vec::new();
    for jobs in ["1", "4", "8"] {
        let path = dir.join(format!("metrics-j{jobs}.json"));
        let path_str = path.to_str().expect("utf-8 temp path");
        let stdout = repro_stdout(&[
            "--scale",
            "test",
            "--jobs",
            jobs,
            "--metrics-json",
            path_str,
        ]);
        assert!(!stdout.is_empty(), "repro printed nothing at --jobs {jobs}");
        let snap = std::fs::read(&path).expect("metrics snapshot written");
        assert!(!snap.is_empty(), "empty metrics snapshot at --jobs {jobs}");
        snapshots.push((jobs, snap));
    }
    let (_, reference) = &snapshots[0];
    let text = String::from_utf8_lossy(reference).into_owned();
    for key in [
        "repro.cache.hits",
        "repro.cache.misses",
        "repro.figure.fig16.sim_loads",
        "repro.instr.edge-check",
        "repro.figure.sim_loads",
    ] {
        assert!(text.contains(key), "snapshot missing {key}:\n{text}");
    }
    for (jobs, snap) in &snapshots[1..] {
        assert_eq!(snap, reference, "metrics snapshot differs at --jobs {jobs}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jobs_zero_is_rejected_with_a_clear_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "test", "--jobs", "0"])
        .output()
        .expect("run repro");
    assert!(!out.status.success(), "--jobs 0 must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--jobs 0 is invalid"),
        "stderr should explain the rejection, got: {err}"
    );
}
