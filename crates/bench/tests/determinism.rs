//! Parallel runs must be byte-identical to serial runs: the figure output
//! is a reproduction artifact, so `--jobs` may only change wall-clock,
//! never a single byte of what is printed.

use std::process::Command;

fn repro_stdout(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn full_figure_output_is_identical_at_jobs_1_and_8() {
    let serial = repro_stdout(&["--scale", "test", "--jobs", "1"]);
    let parallel = repro_stdout(&["--scale", "test", "--jobs", "8"]);
    assert!(!serial.is_empty(), "repro printed nothing");
    assert_eq!(
        serial, parallel,
        "figure output must not depend on the worker count"
    );
}

#[test]
fn single_figure_output_is_identical_across_jobs() {
    // Figure 16 exercises the widest fan-out (12 workloads x variants).
    let serial = repro_stdout(&["--scale", "test", "--figure", "16", "--jobs", "1"]);
    for jobs in ["2", "5", "8"] {
        let parallel = repro_stdout(&["--scale", "test", "--figure", "16", "--jobs", jobs]);
        assert_eq!(serial, parallel, "figure 16 differs at --jobs {jobs}");
    }
}

#[test]
fn jobs_zero_is_rejected_with_a_clear_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "test", "--jobs", "0"])
        .output()
        .expect("run repro");
    assert!(!out.status.success(), "--jobs 0 must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--jobs 0 is invalid"),
        "stderr should explain the rejection, got: {err}"
    );
}
