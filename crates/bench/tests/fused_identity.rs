//! Byte-identity contract of the self-applied-PGO work: superinstruction
//! fusion and the load fast path are interpreter-only optimizations, so
//! every logical output — cycles, instruction counts, memory events,
//! per-site load counts, figures — must match the plain interpreter
//! exactly on every workload. Only wall-clock and the `vm.*`
//! meta-counters may differ.

use std::process::Command;

use stride_memsim::{CacheHierarchy, HierarchyConfig};
use stride_vm::{NullRuntime, RunResult, Vm, VmConfig};
use stride_workloads::{all_workloads, Scale};

fn run_workload(module: &stride_ir::Module, args: &[i64], fuse: bool) -> (RunResult, String) {
    let config = VmConfig {
        fuse,
        ..VmConfig::default()
    };
    let mut vm = Vm::new(module, config);
    let mut hierarchy = CacheHierarchy::new(HierarchyConfig::default());
    let run = vm
        .run(args, &mut hierarchy, &mut NullRuntime)
        .expect("workload run");
    (run, format!("{:?}", hierarchy.stats()))
}

#[test]
fn every_workload_is_byte_identical_fused_vs_unfused() {
    for w in all_workloads(Scale::Test) {
        let (fused, fused_mem) = run_workload(&w.module, &w.train_args, true);
        let (plain, plain_mem) = run_workload(&w.module, &w.train_args, false);
        assert!(
            fused.fused_dispatch > 0,
            "{}: fusion found nothing to fuse — the contract test would be vacuous",
            w.name
        );
        assert_eq!(plain.fused_dispatch, 0, "{}", w.name);
        assert_eq!(fused.return_value, plain.return_value, "{}", w.name);
        assert_eq!(fused.cycles, plain.cycles, "{}", w.name);
        assert_eq!(fused.instructions, plain.instructions, "{}", w.name);
        assert_eq!(fused.loads, plain.loads, "{}", w.name);
        assert_eq!(fused.stores, plain.stores, "{}", w.name);
        assert_eq!(fused.prefetches, plain.prefetches, "{}", w.name);
        assert_eq!(fused.mem_stall_cycles, plain.mem_stall_cycles, "{}", w.name);
        assert_eq!(fused.profiling_cycles, plain.profiling_cycles, "{}", w.name);
        assert_eq!(
            fused.load_site_counts, plain.load_site_counts,
            "{}: per-site load attribution must survive fusion",
            w.name
        );
        assert_eq!(
            fused_mem, plain_mem,
            "{}: full cache-hierarchy state must match",
            w.name
        );
    }
}

fn repro_stdout(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn figure_output_is_identical_with_and_without_fusion() {
    let fused = repro_stdout(&["--scale", "test"]);
    let plain = repro_stdout(&["--scale", "test", "--no-fuse"]);
    assert!(!fused.is_empty(), "repro printed nothing");
    assert_eq!(
        fused, plain,
        "--no-fuse may only change wall-clock, never a figure byte"
    );
}
