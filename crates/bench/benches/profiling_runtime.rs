//! Microbenchmarks of the profiling runtime itself (§3.1's efficiency
//! argument): LFU insertion under different value diversity, and the
//! `strideProf` variants (plain / enhanced / sampled) on representative
//! address streams. Std-only harness; pass `--bench-json PATH` (after
//! `--`) or set `BENCH_JSON` to keep the numbers.

use stride_bench::BenchReport;
use stride_profiling::{Lfu, LfuConfig, StrideProfConfig, StrideProfData, StrideProfEngine};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut report = BenchReport::new();

    for distinct in [1u64, 4, 16, 64] {
        report.run(
            &format!("lfu_insert/{distinct}_distinct_values"),
            2000,
            Some(1024),
            || {
                let mut lfu = Lfu::new(LfuConfig::standard());
                for i in 0..1024u64 {
                    lfu.insert((i % distinct) as i64 * 8);
                }
                lfu.total()
            },
        );
    }

    let configs = [
        ("plain_fig6", StrideProfConfig::plain()),
        ("enhanced_fig7", StrideProfConfig::enhanced()),
        ("sampled_fig9", StrideProfConfig::sampled()),
    ];
    // A parser-like stream: mostly stride 80, occasional breaks.
    let addresses: Vec<u64> = (0..4096u64)
        .map(|i| 0x1000_0000 + i * 80 + if i % 16 == 0 { 48 } else { 0 })
        .collect();
    for (name, config) in &configs {
        report.run(
            &format!("stride_prof/{name}"),
            1000,
            Some(addresses.len() as u64),
            || {
                let mut engine = StrideProfEngine::new();
                let mut data = StrideProfData::new(config);
                for &a in &addresses {
                    engine.stride_prof(config, &mut data, a);
                }
                engine.stats.processed
            },
        );
    }

    // The paper's §3.1: zero strides bypass the LFU; the fast path should
    // be much cheaper than the full insertion path.
    report.run(
        "stride_prof_paths/all_zero_strides",
        1000,
        Some(4096),
        || {
            let config = StrideProfConfig::plain();
            let mut engine = StrideProfEngine::new();
            let mut data = StrideProfData::new(&config);
            for _ in 0..4096 {
                engine.stride_prof(&config, &mut data, 0x4000);
            }
            data.num_zero_stride
        },
    );
    report.run(
        "stride_prof_paths/all_distinct_strides",
        1000,
        Some(4096),
        || {
            let config = StrideProfConfig::plain();
            let mut engine = StrideProfEngine::new();
            let mut data = StrideProfData::new(&config);
            let mut addr = 0x4000u64;
            for i in 0..4096u64 {
                addr += 8 + (i * 97) % 4096; // never repeats
                engine.stride_prof(&config, &mut data, addr);
            }
            data.total_freq()
        },
    );

    report.write_if_requested(&args).expect("write bench json");
}
