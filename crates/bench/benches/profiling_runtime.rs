//! Microbenchmarks of the profiling runtime itself (§3.1's efficiency
//! argument): LFU insertion under different value diversity, and the
//! `strideProf` variants (plain / enhanced / sampled) on representative
//! address streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stride_profiling::{Lfu, LfuConfig, StrideProfConfig, StrideProfData, StrideProfEngine};

fn bench_lfu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfu_insert");
    for distinct in [1u64, 4, 16, 64] {
        group.throughput(Throughput::Elements(1024));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{distinct}_distinct_values")),
            &distinct,
            |b, &distinct| {
                b.iter(|| {
                    let mut lfu = Lfu::new(LfuConfig::standard());
                    for i in 0..1024u64 {
                        lfu.insert((i % distinct) as i64 * 8);
                    }
                    lfu.total()
                });
            },
        );
    }
    group.finish();
}

fn bench_stride_prof(c: &mut Criterion) {
    let mut group = c.benchmark_group("stride_prof");
    let configs = [
        ("plain_fig6", StrideProfConfig::plain()),
        ("enhanced_fig7", StrideProfConfig::enhanced()),
        ("sampled_fig9", StrideProfConfig::sampled()),
    ];
    // A parser-like stream: mostly stride 80, occasional breaks.
    let addresses: Vec<u64> = (0..4096u64)
        .map(|i| 0x1000_0000 + i * 80 + if i % 16 == 0 { 48 } else { 0 })
        .collect();
    for (name, config) in configs {
        group.throughput(Throughput::Elements(addresses.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut engine = StrideProfEngine::new();
                    let mut data = StrideProfData::new(config);
                    for &a in &addresses {
                        engine.stride_prof(config, &mut data, a);
                    }
                    engine.stats.processed
                });
            },
        );
    }
    group.finish();
}

fn bench_zero_stride_fast_path(c: &mut Criterion) {
    // The paper's §3.1: zero strides bypass the LFU; the fast path should
    // be much cheaper than the full insertion path.
    let mut group = c.benchmark_group("stride_prof_paths");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("all_zero_strides", |b| {
        let config = StrideProfConfig::plain();
        b.iter(|| {
            let mut engine = StrideProfEngine::new();
            let mut data = StrideProfData::new(&config);
            for _ in 0..4096 {
                engine.stride_prof(&config, &mut data, 0x4000);
            }
            data.num_zero_stride
        });
    });
    group.bench_function("all_distinct_strides", |b| {
        let config = StrideProfConfig::plain();
        b.iter(|| {
            let mut engine = StrideProfEngine::new();
            let mut data = StrideProfData::new(&config);
            let mut addr = 0x4000u64;
            for i in 0..4096u64 {
                addr += 8 + (i * 97) % 4096; // never repeats
                engine.stride_prof(&config, &mut data, addr);
            }
            data.total_freq()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lfu, bench_stride_prof, bench_zero_stride_fast_path);
criterion_main!(benches);
