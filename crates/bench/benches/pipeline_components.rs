//! Component-level benches of the compiler passes themselves:
//! instrumentation, classification, prefetch insertion, and raw VM
//! interpretation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stride_core::{
    apply_prefetching, classify, instrument, run_profiling, PipelineConfig, PrefetchConfig,
    ProfilingMethod, ProfilingVariant,
};
use stride_memsim::{CacheHierarchy, HierarchyConfig};
use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};
use stride_workloads::{workload_by_name, Scale};

fn bench_instrumentation(c: &mut Criterion) {
    let w = workload_by_name("parser", Scale::Test).unwrap();
    let config = PrefetchConfig::paper();
    let mut group = c.benchmark_group("pass_instrument");
    for method in [ProfilingMethod::EdgeCheck, ProfilingMethod::NaiveAll] {
        group.bench_function(method.to_string(), |b| {
            b.iter(|| instrument(&w.module, method, &config).module.instr_count());
        });
    }
    group.finish();
}

fn bench_feedback_passes(c: &mut Criterion) {
    let w = workload_by_name("parser", Scale::Test).unwrap();
    let pipeline = PipelineConfig {
        prefetch: PrefetchConfig {
            frequency_threshold: 100,
            ..PrefetchConfig::paper()
        },
        ..PipelineConfig::default()
    };
    let outcome = run_profiling(&w.module, &w.train_args, ProfilingVariant::NaiveAll, &pipeline)
        .expect("profiling");

    c.bench_function("pass_classify", |b| {
        b.iter(|| {
            classify(
                &w.module,
                &outcome.stride,
                &outcome.edge,
                outcome.source,
                &pipeline.prefetch,
            )
            .loads
            .len()
        });
    });

    let classification = classify(
        &w.module,
        &outcome.stride,
        &outcome.edge,
        outcome.source,
        &pipeline.prefetch,
    );
    c.bench_function("pass_apply_prefetching", |b| {
        b.iter(|| {
            apply_prefetching(&w.module, &classification, &pipeline.prefetch)
                .1
                .prefetches_inserted
        });
    });
}

fn bench_vm_throughput(c: &mut Criterion) {
    let w = workload_by_name("gzip", Scale::Test).unwrap();
    // Count instructions once for throughput reporting.
    let mut vm = Vm::new(&w.module, VmConfig::default());
    let instrs = vm
        .run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
        .unwrap()
        .instructions;

    let mut group = c.benchmark_group("vm_interpret");
    group.throughput(Throughput::Elements(instrs));
    group.bench_function("flat_memory", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&w.module, VmConfig::default());
            vm.run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
                .unwrap()
                .cycles
        });
    });
    group.bench_function("cache_hierarchy", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&w.module, VmConfig::default());
            let mut h = CacheHierarchy::new(HierarchyConfig::itanium733());
            vm.run(&w.train_args, &mut h, &mut NullRuntime)
                .unwrap()
                .cycles
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_instrumentation,
    bench_feedback_passes,
    bench_vm_throughput
);
criterion_main!(benches);
