//! Component-level benches of the compiler passes themselves:
//! instrumentation, classification, prefetch insertion, and raw VM
//! interpretation throughput. Std-only harness; pass `--bench-json PATH`
//! (after `--`) or set `BENCH_JSON` to keep the numbers.

use stride_bench::BenchReport;
use stride_core::{
    apply_prefetching, classify, instrument, run_profiling, ClassifyThresholds, PipelineConfig,
    PrefetchConfig, ProfilingMethod, ProfilingVariant,
};
use stride_memsim::{Cache, CacheGeometry, CacheHierarchy, HierarchyConfig};
use stride_vm::{FlatTiming, NullRuntime, Vm, VmConfig};
use stride_workloads::{workload_by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut report = BenchReport::new();

    let w = workload_by_name("parser", Scale::Test).unwrap();
    let config = PrefetchConfig::paper();
    for method in [ProfilingMethod::EdgeCheck, ProfilingMethod::NaiveAll] {
        report.run(&format!("pass_instrument/{method}"), 200, None, || {
            instrument(&w.module, method, &config).module.instr_count()
        });
    }

    let pipeline = PipelineConfig {
        prefetch: PrefetchConfig {
            thresholds: ClassifyThresholds {
                frequency_threshold: 100,
                ..ClassifyThresholds::paper()
            },
            ..PrefetchConfig::paper()
        },
        ..PipelineConfig::default()
    };
    let outcome = run_profiling(
        &w.module,
        &w.train_args,
        ProfilingVariant::NaiveAll,
        &pipeline,
    )
    .expect("profiling");

    report.run("pass_classify", 200, None, || {
        classify(
            &w.module,
            &outcome.stride,
            &outcome.edge,
            outcome.source,
            &pipeline.prefetch,
        )
        .loads
        .len()
    });

    let classification = classify(
        &w.module,
        &outcome.stride,
        &outcome.edge,
        outcome.source,
        &pipeline.prefetch,
    );
    report.run("pass_apply_prefetching", 200, None, || {
        apply_prefetching(&w.module, &classification, &pipeline.prefetch)
            .1
            .prefetches_inserted
    });

    // Raw cache-model throughput: a hot line re-touched (the MRU fast
    // path) and a strided sweep with misses and evictions.
    let geo = CacheGeometry {
        size_bytes: 16 * 1024,
        ways: 4,
        line_size: 64,
    };
    report.run("cache_access/hot_line", 500, Some(65536), || {
        let mut c = Cache::new(geo);
        c.install(0x1000);
        let mut hits = 0u64;
        for _ in 0..65536 {
            if c.access(0x1000) {
                hits += 1;
            }
        }
        hits
    });
    report.run("cache_access/strided_sweep", 500, Some(65536), || {
        let mut c = Cache::new(geo);
        let mut hits = 0u64;
        for i in 0..65536u64 {
            let a = (i * 64) % (64 * 1024);
            if c.access(a) {
                hits += 1;
            } else {
                c.install(a);
            }
        }
        hits
    });

    let w = workload_by_name("gzip", Scale::Test).unwrap();
    // Count instructions once for throughput reporting.
    let mut vm = Vm::new(&w.module, VmConfig::default());
    let instrs = vm
        .run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
        .unwrap()
        .instructions;

    report.run("vm_interpret/flat_memory", 20, Some(instrs), || {
        let mut vm = Vm::new(&w.module, VmConfig::default());
        vm.run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
            .unwrap()
            .cycles
    });
    report.run("vm_interpret/cache_hierarchy", 20, Some(instrs), || {
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let mut h = CacheHierarchy::new(HierarchyConfig::itanium733());
        vm.run(&w.train_args, &mut h, &mut NullRuntime)
            .unwrap()
            .cycles
    });

    // Call-dominated: a loop whose body is one call/ret pair, so per-call
    // frame setup cost is the whole story.
    let m = {
        use stride_ir::{BinOp, ModuleBuilder, Operand};
        let mut mb = ModuleBuilder::new();
        let leaf = mb.declare_function("sq", 1);
        {
            let mut fb = mb.function(leaf);
            let x = fb.param(0);
            let y = fb.mul(x, x);
            fb.ret(Some(Operand::Reg(y)));
        }
        let f = mb.declare_function("main", 1);
        {
            let mut fb = mb.function(f);
            let sum = fb.const_(0);
            fb.counted_loop(fb.param(0), |fb, i| {
                let r = fb.call(leaf, &[Operand::Reg(i)]);
                fb.bin_to(sum, BinOp::Add, sum, r);
            });
            fb.ret(Some(Operand::Reg(sum)));
        }
        mb.set_entry(f);
        mb.finish()
    };
    report.run("vm_interpret/call_ret_loop", 500, Some(8000), || {
        let mut vm = Vm::new(&m, VmConfig::default());
        vm.run(&[8000], &mut FlatTiming, &mut NullRuntime)
            .unwrap()
            .return_value
    });

    report.write_if_requested(&args).expect("write bench json");
}
