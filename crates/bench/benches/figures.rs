//! One bench target per paper table/figure: each executes the
//! corresponding figure's pipeline at test scale, so `cargo bench`
//! exercises every experiment end-to-end and tracks its cost over time.
//! (The paper-scale numbers themselves are produced by the `repro`
//! binary; see EXPERIMENTS.md.) Std-only harness; pass
//! `--bench-json PATH` (after `--`) or set `BENCH_JSON` to keep the
//! numbers.

use stride_bench::{
    fig15_table, fig16_speedups, fig17_load_mix, fig18_19_distributions, fig20_22_overheads,
    fig23_25_sensitivity, BenchReport, FigureCtx, RunCache,
};
use stride_core::{ClassifyThresholds, PipelineConfig, PrefetchConfig, ProfilingVariant};
use stride_workloads::Scale;

fn test_config() -> PipelineConfig {
    PipelineConfig {
        prefetch: PrefetchConfig {
            thresholds: ClassifyThresholds {
                frequency_threshold: 200, // test-scale inputs
                ..ClassifyThresholds::paper()
            },
            ..PrefetchConfig::paper()
        },
        ..PipelineConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = test_config();
    let mut report = BenchReport::new();

    report.run("fig15_benchmark_table", 100, None, || {
        fig15_table(Scale::Test).len()
    });
    // Fresh cache per iteration: these targets time the full uncached
    // pipeline, as the seed's Criterion benches did.
    report.run("fig16_speedup/suite_edge_check", 5, None, || {
        let cache = RunCache::new();
        let ctx = FigureCtx::new(Scale::Test, &config, &cache, 1);
        fig16_speedups(&ctx, &[ProfilingVariant::EdgeCheck])
            .into_strict()
            .expect("pipeline")
            .len()
    });
    report.run("fig16_speedup/suite_sample_edge_check", 5, None, || {
        let cache = RunCache::new();
        let ctx = FigureCtx::new(Scale::Test, &config, &cache, 1);
        fig16_speedups(&ctx, &[ProfilingVariant::SampleEdgeCheck])
            .into_strict()
            .expect("pipeline")
            .len()
    });
    report.run("fig17_load_mix/suite", 5, None, || {
        let cache = RunCache::new();
        let ctx = FigureCtx::new(Scale::Test, &config, &cache, 1);
        fig17_load_mix(&ctx).into_strict().expect("pipeline").len()
    });
    report.run("fig18_19_distributions/suite_naive_all", 5, None, || {
        let cache = RunCache::new();
        let ctx = FigureCtx::new(Scale::Test, &config, &cache, 1);
        fig18_19_distributions(&ctx)
            .into_strict()
            .expect("pipeline")
            .len()
    });
    report.run(
        "fig20_22_overhead/suite_edge_check_vs_naive",
        5,
        None,
        || {
            let cache = RunCache::new();
            let ctx = FigureCtx::new(Scale::Test, &config, &cache, 1);
            fig20_22_overheads(
                &ctx,
                &[ProfilingVariant::EdgeCheck, ProfilingVariant::NaiveLoop],
            )
            .into_strict()
            .expect("pipeline")
            .len()
        },
    );
    report.run(
        "fig23_25_sensitivity/suite_sample_edge_check",
        5,
        None,
        || {
            let cache = RunCache::new();
            let ctx = FigureCtx::new(Scale::Test, &config, &cache, 1);
            fig23_25_sensitivity(&ctx)
                .into_strict()
                .expect("pipeline")
                .len()
        },
    );

    report.write_if_requested(&args).expect("write bench json");
}
