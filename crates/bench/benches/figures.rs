//! One Criterion bench per paper table/figure: each target executes the
//! corresponding figure's pipeline at test scale, so `cargo bench`
//! exercises every experiment end-to-end and tracks its cost over time.
//! (The paper-scale numbers themselves are produced by the `repro`
//! binary; see EXPERIMENTS.md.)

use criterion::{criterion_group, criterion_main, Criterion};
use stride_bench::{
    fig15_table, fig16_speedups, fig17_load_mix, fig18_19_distributions, fig20_22_overheads,
    fig23_25_sensitivity,
};
use stride_core::{PipelineConfig, PrefetchConfig, ProfilingVariant};
use stride_workloads::Scale;

fn test_config() -> PipelineConfig {
    PipelineConfig {
        prefetch: PrefetchConfig {
            frequency_threshold: 200, // test-scale inputs
            ..PrefetchConfig::paper()
        },
        ..PipelineConfig::default()
    }
}

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("fig15_benchmark_table", |b| {
        b.iter(|| fig15_table(Scale::Test).len());
    });
}

fn bench_fig16(c: &mut Criterion) {
    let config = test_config();
    let mut group = c.benchmark_group("fig16_speedup");
    group.sample_size(10);
    group.bench_function("suite_edge_check", |b| {
        b.iter(|| {
            fig16_speedups(Scale::Test, &[ProfilingVariant::EdgeCheck], &config)
                .expect("pipeline")
                .len()
        });
    });
    group.bench_function("suite_sample_edge_check", |b| {
        b.iter(|| {
            fig16_speedups(Scale::Test, &[ProfilingVariant::SampleEdgeCheck], &config)
                .expect("pipeline")
                .len()
        });
    });
    group.finish();
}

fn bench_fig17(c: &mut Criterion) {
    let config = test_config();
    let mut group = c.benchmark_group("fig17_load_mix");
    group.sample_size(10);
    group.bench_function("suite", |b| {
        b.iter(|| fig17_load_mix(Scale::Test, &config).expect("pipeline").len());
    });
    group.finish();
}

fn bench_fig18_19(c: &mut Criterion) {
    let config = test_config();
    let mut group = c.benchmark_group("fig18_19_distributions");
    group.sample_size(10);
    group.bench_function("suite_naive_all", |b| {
        b.iter(|| {
            fig18_19_distributions(Scale::Test, &config)
                .expect("pipeline")
                .len()
        });
    });
    group.finish();
}

fn bench_fig20_22(c: &mut Criterion) {
    let config = test_config();
    let mut group = c.benchmark_group("fig20_22_overhead");
    group.sample_size(10);
    group.bench_function("suite_edge_check_vs_naive", |b| {
        b.iter(|| {
            fig20_22_overheads(
                Scale::Test,
                &[ProfilingVariant::EdgeCheck, ProfilingVariant::NaiveLoop],
                &config,
            )
            .expect("pipeline")
            .len()
        });
    });
    group.finish();
}

fn bench_fig23_25(c: &mut Criterion) {
    let config = test_config();
    let mut group = c.benchmark_group("fig23_25_sensitivity");
    group.sample_size(10);
    group.bench_function("suite_sample_edge_check", |b| {
        b.iter(|| {
            fig23_25_sensitivity(Scale::Test, &config)
                .expect("pipeline")
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig15,
    bench_fig16,
    bench_fig17,
    bench_fig18_19,
    bench_fig20_22,
    bench_fig23_25
);
criterion_main!(benches);
