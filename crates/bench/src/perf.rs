//! Std-only performance measurement: a tiny micro-bench harness (used by
//! the `benches/` targets, which run without an external harness) and the
//! machine-readable perf summary emitted by `repro --bench-json` so the
//! performance trajectory of the reproduction is tracked from one data
//! point to the next.

use std::time::{Duration, Instant};

/// One measured bench target.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Target name, e.g. `"stride_prof/enhanced_fig7"`.
    pub name: String,
    /// Iterations timed (after warm-up).
    pub iters: u64,
    /// Total wall-clock for all timed iterations.
    pub total: Duration,
    /// Elements processed per iteration (for throughput lines), if any.
    pub elements_per_iter: Option<u64>,
}

impl BenchEntry {
    /// Nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }

    /// Elements per second, when an element count was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements_per_iter.map(|n| {
            let secs = self.total.as_secs_f64() / self.iters.max(1) as f64;
            n as f64 / secs.max(1e-12)
        })
    }
}

/// A collection of bench results that prints human-readable lines and can
/// serialize itself to JSON.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// All measured entries, in run order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` (after one warm-up call) for `iters` iterations, records
    /// the entry, and prints the usual one-line summary. `elements` is the
    /// per-iteration element count for throughput reporting.
    pub fn run<R, F: FnMut() -> R>(
        &mut self,
        name: &str,
        iters: u64,
        elements: Option<u64>,
        mut f: F,
    ) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let entry = BenchEntry {
            name: name.to_string(),
            iters,
            total: start.elapsed(),
            elements_per_iter: elements,
        };
        match entry.elements_per_sec() {
            Some(eps) => println!(
                "{:<44} {:>12.0} ns/iter {:>14.0} elem/s",
                entry.name,
                entry.ns_per_iter(),
                eps
            ),
            None => println!("{:<44} {:>12.0} ns/iter", entry.name, entry.ns_per_iter()),
        }
        self.entries.push(entry);
    }

    /// Serializes the report as a JSON array of objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": {}, \"iters\": {}, \"ns_per_iter\": {:.1}, \"elements_per_sec\": {}}}",
                json_string(&e.name),
                e.iters,
                e.ns_per_iter(),
                e.elements_per_sec()
                    .map_or("null".to_string(), |v| format!("{v:.0}")),
            ));
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push(']');
        out
    }

    /// Writes the JSON report to `path` when the common CLI/env convention
    /// asks for it: `--bench-json <path>` in `args`, else the
    /// `BENCH_JSON` environment variable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write_if_requested(&self, args: &[String]) -> std::io::Result<()> {
        let from_flag = args
            .iter()
            .position(|a| a == "--bench-json")
            .and_then(|i| args.get(i + 1).cloned());
        let path = from_flag.or_else(|| std::env::var("BENCH_JSON").ok());
        if let Some(path) = path {
            std::fs::write(&path, self.to_json())?;
            eprintln!("bench report written to {path}");
        }
        Ok(())
    }
}

/// Per-figure measurement of one `repro` invocation.
#[derive(Clone, Debug)]
pub struct FigurePerf {
    /// Figure label, e.g. `"fig16"`.
    pub figure: String,
    /// Wall-clock time spent producing the figure.
    pub wall: Duration,
    /// Simulated dynamic loads executed for this figure (fresh runs only —
    /// memoized runs cost nothing and count nothing).
    pub sim_loads: u64,
    /// Cache-simulator demand accesses (loads + stores) for this figure.
    pub sim_accesses: u64,
}

/// The machine-readable perf summary of one `repro` run
/// (`--bench-json <path>`): per-figure wall-clock and simulation
/// throughput, plus run-cache effectiveness.
#[derive(Clone, Debug, Default)]
pub struct PerfSummary {
    /// `test` or `paper`.
    pub scale: String,
    /// Worker threads used.
    pub jobs: usize,
    /// Whether superinstruction fusion was enabled (`repro --no-fuse`
    /// clears it; the A/B switch for the self-applied-PGO measurements).
    pub fuse: bool,
    /// Per-figure measurements, in production order.
    pub figures: Vec<FigurePerf>,
    /// Run-cache hits across the whole invocation.
    pub run_cache_hits: u64,
    /// Run-cache misses (fresh simulations) across the whole invocation.
    pub run_cache_misses: u64,
}

impl PerfSummary {
    /// Total wall-clock across all figures.
    pub fn total_wall(&self) -> Duration {
        self.figures.iter().map(|f| f.wall).sum()
    }

    /// Serializes the summary to JSON.
    pub fn to_json(&self) -> String {
        let total = self.total_wall().as_secs_f64();
        let loads: u64 = self.figures.iter().map(|f| f.sim_loads).sum();
        let accesses: u64 = self.figures.iter().map(|f| f.sim_accesses).sum();
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": {},\n", json_string(&self.scale)));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"fuse\": {},\n", self.fuse));
        out.push_str(&format!("  \"total_wall_s\": {total:.3},\n"));
        out.push_str(&format!("  \"sim_loads\": {loads},\n"));
        out.push_str(&format!("  \"sim_accesses\": {accesses},\n"));
        out.push_str(&format!(
            "  \"loads_per_sec\": {:.0},\n",
            loads as f64 / total.max(1e-9)
        ));
        out.push_str(&format!(
            "  \"accesses_per_sec\": {:.0},\n",
            accesses as f64 / total.max(1e-9)
        ));
        out.push_str(&format!("  \"run_cache_hits\": {},\n", self.run_cache_hits));
        out.push_str(&format!(
            "  \"run_cache_misses\": {},\n",
            self.run_cache_misses
        ));
        out.push_str("  \"figures\": [\n");
        for (i, f) in self.figures.iter().enumerate() {
            let wall = f.wall.as_secs_f64();
            out.push_str(&format!(
                "    {{\"figure\": {}, \"wall_s\": {:.3}, \"sim_loads\": {}, \"sim_accesses\": {}, \"loads_per_sec\": {:.0}, \"accesses_per_sec\": {:.0}}}",
                json_string(&f.figure),
                wall,
                f.sim_loads,
                f.sim_accesses,
                f.sim_loads as f64 / wall.max(1e-9),
                f.sim_accesses as f64 / wall.max(1e-9),
            ));
            out.push_str(if i + 1 < self.figures.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_entry_rates() {
        let e = BenchEntry {
            name: "x".into(),
            iters: 10,
            total: Duration::from_micros(10),
            elements_per_iter: Some(1000),
        };
        assert!((e.ns_per_iter() - 1000.0).abs() < 1e-6);
        let eps = e.elements_per_sec().unwrap();
        assert!((eps - 1e9).abs() / 1e9 < 1e-6, "{eps}");
    }

    #[test]
    fn report_json_shape() {
        let mut r = BenchReport::new();
        r.run("a\"b", 3, Some(7), || 42);
        let j = r.to_json();
        assert!(j.starts_with('['));
        assert!(j.contains("\"a\\\"b\""));
        assert!(j.contains("\"iters\": 3"));
    }

    #[test]
    fn summary_json_totals() {
        let s = PerfSummary {
            scale: "test".into(),
            jobs: 2,
            fuse: true,
            figures: vec![
                FigurePerf {
                    figure: "fig16".into(),
                    wall: Duration::from_millis(500),
                    sim_loads: 1000,
                    sim_accesses: 2000,
                },
                FigurePerf {
                    figure: "fig17".into(),
                    wall: Duration::from_millis(500),
                    sim_loads: 500,
                    sim_accesses: 700,
                },
            ],
            run_cache_hits: 3,
            run_cache_misses: 5,
        };
        let j = s.to_json();
        assert!(j.contains("\"sim_loads\": 1500"));
        assert!(j.contains("\"fuse\": true"));
        assert!(j.contains("\"loads_per_sec\": 1500"));
        assert!(j.contains("\"run_cache_hits\": 3"));
        assert!(j.contains("\"figures\": ["));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("q\"\\"), "\"q\\\"\\\\\"");
    }
}
