//! Self-applied profiling driver: runs the SPEC workload suite under the
//! interpreter's own dispatch profiler and prints the opcode, digram and
//! hot-load-site ranking that motivates the dispatch ordering, the
//! superinstruction fusion pass, and the load fast path.
//!
//! ```text
//! selfprof [--scale test|paper] [--fused]
//! ```
//!
//! By default the suite runs with fusion *disabled* — the profile of the
//! unoptimized dispatch loop is the input to the PGO decisions. `--fused`
//! profiles the optimized dispatch instead, showing how the dominant
//! digrams collapse into superinstructions.
//!
//! Requires the `vm-selfprof` feature:
//!
//! ```text
//! cargo run --release -p stride-bench --features vm-selfprof --bin selfprof
//! ```

#[cfg(feature = "vm-selfprof")]
fn main() {
    use stride_memsim::{CacheHierarchy, HierarchyConfig};
    use stride_vm::selfprof::SelfProfile;
    use stride_vm::{NullRuntime, Vm, VmConfig};
    use stride_workloads::{all_workloads, Scale};

    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Test;
    let mut fused = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--fused" => fused = true,
            _ => usage(),
        }
        i += 1;
    }

    let config = VmConfig {
        fuse: fused,
        ..VmConfig::default()
    };
    let mut total = SelfProfile::new();
    let mut probe_cycles = 0u64;
    println!(
        "self-applied profile: {} dispatch, scale {}",
        if fused { "fused" } else { "unfused" },
        match scale {
            Scale::Test => "test",
            Scale::Paper => "paper",
        }
    );
    println!();
    for w in all_workloads(scale) {
        let mut vm = Vm::new(&w.module, config);
        let mut hierarchy = CacheHierarchy::new(HierarchyConfig::default());
        let run = match vm.run(&w.train_args, &mut hierarchy, &mut NullRuntime) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("selfprof: {} failed: {e}", w.name);
                std::process::exit(1);
            }
        };
        probe_cycles += run.selfprof_overhead_cycles;

        // Hot load sites of this workload (inputs to the fast-path work).
        let mut sites: Vec<(usize, usize, u64)> = Vec::new();
        for (fi, per_site) in run.load_site_counts.iter().enumerate() {
            for (si, &count) in per_site.iter().enumerate() {
                if count > 0 {
                    sites.push((fi, si, count));
                }
            }
        }
        sites.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
        println!("{}: {} dispatch events", w.name, vm.selfprof.events());
        for &(fi, si, count) in sites.iter().take(3) {
            println!(
                "  hot load site {}@i{}: {} executions",
                w.module.functions[fi].name, si, count
            );
        }
        total.merge(&vm.selfprof);
    }

    println!();
    println!("== suite-wide dispatch profile ==");
    print!("{}", total.report(10));
    println!("probe overhead: {probe_cycles} meta-cycles");
}

#[cfg(feature = "vm-selfprof")]
fn usage() -> ! {
    eprintln!("usage: selfprof [--scale test|paper] [--fused]");
    std::process::exit(2);
}

#[cfg(not(feature = "vm-selfprof"))]
fn main() {
    eprintln!(
        "selfprof: the dispatch profiler is compiled out by default.\n\
         Rebuild with: cargo run --release -p stride-bench --features vm-selfprof --bin selfprof"
    );
    std::process::exit(2);
}
