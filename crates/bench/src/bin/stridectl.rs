//! `stridectl` — command-line client for the `strided` daemon.
//!
//! ```text
//! stridectl [--addr HOST:PORT] submit NAME (--file PATH | --builtin WL [--scale S])
//! stridectl [--addr HOST:PORT] profile NAME [--variant V] [--args 1,2]
//! stridectl [--addr HOST:PORT] classify NAME [--variant V] [--args 1,2]
//! stridectl [--addr HOST:PORT] prefetch NAME [--variant V] [--train 1,2] [--ref 3,4]
//! stridectl [--addr HOST:PORT] get-profile NAME
//! stridectl [--addr HOST:PORT] merge-profile --file PATH
//! stridectl [--addr HOST:PORT] stats
//! stridectl [--addr HOST:PORT] top
//! stridectl [--addr HOST:PORT] shutdown
//! stridectl serve-bench [--jobs 1,4,8] [--requests N] [--workload WL]
//!                       [--scale test|paper] [--bench-json PATH]
//! stridectl [--addr HOST:PORT] replay [--clients N] [--requests N] [--threads T]
//!                       [--seed S] [--workloads K] [--merge-pct P]
//!                       [--max-shed-frac F] [--report PATH]
//! ```
//!
//! Every subcommand except `serve-bench` is one framed round trip against
//! a running daemon; `serve-bench` starts an in-process loopback daemon
//! and measures request throughput at several client concurrency levels;
//! `replay` streams a seeded generated-workload trace (many simulated
//! clients multiplexed over `--threads` connections) at a daemon or a
//! sharded cluster and asserts the service invariants afterwards: no
//! acked merge lost, shedding within budget, latency histograms complete.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use stride_core::{PipelineConfig, ProfilingVariant};
use stride_ir::module_to_string;
use stride_server::{
    Client, ErrorKind, Request, Response, RetryPolicy, Server, ServerConfig, ServiceConfig,
};
use stride_workloads::{workload_by_name, Scale};

/// The daemon answered with a typed error.
const EXIT_SERVER: u8 = 1;
/// The invocation itself was wrong (bad flags, unreadable input).
const EXIT_USAGE: u8 = 2;
/// The transport failed and the retry budget ran out.
const EXIT_TRANSPORT: u8 = 3;

fn usage() -> ExitCode {
    eprintln!(
        "usage: stridectl [GLOBAL FLAGS] COMMAND [FLAGS]\n\
         \n\
         global flags:\n\
         \x20 --addr HOST:PORT       daemon address (default 127.0.0.1:7311)\n\
         \x20 --retries N            attempts per request (default 4; 1 = fail fast)\n\
         \x20 --retry-base-ms MS     first backoff wait (default 10, doubling, capped 2000)\n\
         \x20 --retry-seed S         jitter seed (same seed => identical backoff schedule)\n\
         \x20 --deadline FUEL        per-request VM fuel deadline sent to the server\n\
         \n\
         commands (one round trip against a running `strided serve`):\n\
         \x20 submit NAME --file PATH            register a module from an IR file\n\
         \x20 submit NAME --builtin WL           register a built-in Fig. 15 workload\n\
         \x20                [--scale test|paper]  (prints its train/ref args)\n\
         \x20 profile NAME [--variant V] [--args 1,2]\n\
         \x20 classify NAME [--variant V] [--args 1,2]\n\
         \x20 prefetch NAME [--variant V] [--train 1,2] [--ref 3,4]\n\
         \x20 get-profile NAME                   fetch the accumulated db entry\n\
         \x20 merge-profile --file PATH          merge a saved entry into the db\n\
         \x20 stats [--json]                     raw stats body (legacy keys + metrics);\n\
         \x20                                    --json: one object per shard replica\n\
         \x20                                    plus a summed aggregate (works against\n\
         \x20                                    a router or a single daemon)\n\
         \x20 gc                                 drop db entries for retired/stale\n\
         \x20                                    modules (router fans out cluster-wide)\n\
         \x20 route-update --shard K --replica R --to HOST:PORT\n\
         \x20                                    re-point one shard replica (router only;\n\
         \x20                                    drains its queued replication deltas)\n\
         \x20 health                             failure-detector states per replica\n\
         \x20                                    (router only)\n\
         \x20 repair                             run one anti-entropy round now and\n\
         \x20                                    report per-shard divergence (router only)\n\
         \x20 top                                sorted live-metrics view (counters by\n\
         \x20                                    value, gauges, latency histograms)\n\
         \x20 shutdown\n\
         \n\
         serve-bench (self-contained loopback throughput benchmark):\n\
         \x20 serve-bench [--jobs 1,4,8] [--requests N] [--workload WL]\n\
         \x20             [--scale test|paper] [--bench-json PATH]\n\
         \n\
         replay (seeded generated-trace load driver; uses --addr):\n\
         \x20 replay [--clients N] [--requests N] [--threads T] [--seed S]\n\
         \x20        [--workloads K] [--merge-pct P] [--max-shed-frac F]\n\
         \x20        [--report PATH]\n\
         \x20        streams N requests from N simulated clients (genwork\n\
         \x20        corpus, read-heavy mix) at a daemon or cluster, then\n\
         \x20        asserts: every acked merge present in the db, shed\n\
         \x20        fraction within budget, latency histograms complete\n\
         \n\
         exit codes: 0 ok, {EXIT_SERVER} server error, {EXIT_USAGE} usage, \
         {EXIT_TRANSPORT} transport/retries exhausted\n\
         variants are the pipeline's hyphenated names (edge-check, naive-loop, ...)"
    );
    ExitCode::from(EXIT_USAGE)
}

/// Connection behaviour parsed from the global flags.
struct NetOpts {
    policy: RetryPolicy,
    deadline: Option<u64>,
}

fn net_opts(args: &[String]) -> Result<NetOpts, String> {
    let mut policy = RetryPolicy::default();
    if let Some(v) = flag_value(args, "--retries") {
        policy.max_attempts = v
            .parse::<u32>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --retries `{v}` (expected integer >= 1)"))?;
    }
    if let Some(v) = flag_value(args, "--retry-base-ms") {
        policy.base_delay_ms = v
            .parse::<u64>()
            .map_err(|_| format!("bad --retry-base-ms `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--retry-seed") {
        policy.jitter_seed = v
            .parse::<u64>()
            .map_err(|_| format!("bad --retry-seed `{v}`"))?;
    }
    let deadline = match flag_value(args, "--deadline") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("bad --deadline `{v}` (expected fuel budget)"))?,
        ),
        None => None,
    };
    Ok(NetOpts { policy, deadline })
}

/// `--flag value` lookup over the raw argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

fn parse_int_args(s: &str) -> Result<Vec<i64>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| p.parse::<i64>().map_err(|_| format!("bad integer `{p}`")))
        .collect()
}

fn parse_variant(args: &[String]) -> Result<ProfilingVariant, String> {
    match flag_value(args, "--variant") {
        Some(v) => v.parse::<ProfilingVariant>(),
        None => Ok(ProfilingVariant::EdgeCheck),
    }
}

fn print_trace(trace: &[String]) {
    if !trace.is_empty() {
        eprintln!("stridectl: retry trace:");
        for line in trace {
            eprintln!("  {line}");
        }
    }
}

/// Sends one request and renders the response; exit code 0 only for `ok`,
/// [`EXIT_SERVER`] for a typed server error, [`EXIT_TRANSPORT`] when the
/// connection or the retry budget gives out.
fn round_trip(addr: &str, opts: &NetOpts, req: &Request) -> ExitCode {
    let mut client = match Client::connect_with(addr, opts.policy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("stridectl: cannot connect to {addr}: {e}");
            return ExitCode::from(EXIT_TRANSPORT);
        }
    };
    client.set_deadline_fuel(opts.deadline);
    match client.call(req) {
        Ok(Response::Ok(body)) => {
            // Rust leaves SIGPIPE ignored, so `print!` into a closed pipe
            // (`stridectl profile .. | head -1`) would panic; a reader that
            // hung up got everything it asked for.
            use std::io::Write;
            let _ = std::io::stdout().write_all(body.as_bytes());
            ExitCode::SUCCESS
        }
        Ok(Response::Err {
            kind,
            message,
            retry_after_ms,
            shard,
        }) => {
            match shard {
                Some(k) => eprintln!("stridectl: server error [{kind}] (shard {k})\n{message}"),
                None => eprintln!("stridectl: server error [{kind}]\n{message}"),
            }
            if let Some(ms) = retry_after_ms {
                eprintln!("stridectl: server suggests retrying after {ms} ms");
            }
            print_trace(client.trace());
            ExitCode::from(EXIT_SERVER)
        }
        Err(e) => {
            eprintln!("stridectl: transport error: {e}");
            print_trace(client.trace());
            ExitCode::from(EXIT_TRANSPORT)
        }
    }
}

/// One `stats` round trip rendered as a sorted, `top`-like dashboard:
/// counters descending by value, gauges with their high-water marks,
/// histograms with count/sum/mean, and the tail of the trace ring.
/// Deterministic for a given stats body — lines with equal values sort
/// by name.
fn top_view(addr: &str, opts: &NetOpts) -> ExitCode {
    let mut client = match Client::connect_with(addr, opts.policy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("stridectl: cannot connect to {addr}: {e}");
            return ExitCode::from(EXIT_TRANSPORT);
        }
    };
    client.set_deadline_fuel(opts.deadline);
    let body = match client.call(&Request::Stats) {
        Ok(Response::Ok(body)) => body,
        Ok(Response::Err { kind, message, .. }) => {
            eprintln!("stridectl: server error [{kind}]\n{message}");
            print_trace(client.trace());
            return ExitCode::from(EXIT_SERVER);
        }
        Err(e) => {
            eprintln!("stridectl: transport error: {e}");
            print_trace(client.trace());
            return ExitCode::from(EXIT_TRANSPORT);
        }
    };

    use std::io::Write;
    let mut out = String::new();
    render_top(&body, &mut out);
    let _ = std::io::stdout().write_all(out.as_bytes());
    ExitCode::SUCCESS
}

/// One `stats` round trip rendered as JSON: one object per shard
/// replica (parsed from the router's `== shard K replica R addr A ==`
/// sections) plus a summed aggregate. Against a single daemon (no
/// section headers) the whole body is the aggregate and `shards` is
/// empty.
fn stats_json(addr: &str, opts: &NetOpts) -> ExitCode {
    let mut client = match Client::connect_with(addr, opts.policy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("stridectl: cannot connect to {addr}: {e}");
            return ExitCode::from(EXIT_TRANSPORT);
        }
    };
    client.set_deadline_fuel(opts.deadline);
    let body = match client.call(&Request::Stats) {
        Ok(Response::Ok(body)) => body,
        Ok(Response::Err { kind, message, .. }) => {
            eprintln!("stridectl: server error [{kind}]\n{message}");
            print_trace(client.trace());
            return ExitCode::from(EXIT_SERVER);
        }
        Err(e) => {
            eprintln!("stridectl: transport error: {e}");
            print_trace(client.trace());
            return ExitCode::from(EXIT_TRANSPORT);
        }
    };
    use std::io::Write;
    let _ = std::io::stdout().write_all(render_stats_json(&body).as_bytes());
    ExitCode::SUCCESS
}

/// The `key value` integer lines of one stats section, sorted by key
/// (metrics-registry lines — `counter name v` — keep their prefixed
/// form, so `counter router.forwarded` aggregates separately from a
/// legacy `requests` line).
fn section_ints(lines: &[&str]) -> std::collections::BTreeMap<String, u64> {
    let mut map = std::collections::BTreeMap::new();
    for line in lines {
        let mut parts = line.split(' ');
        let (key, value) = match parts.next() {
            Some("counter") => {
                let (Some(name), Some(v)) = (parts.next(), parts.next()) else {
                    continue;
                };
                (format!("counter.{name}"), v)
            }
            Some(key) if !key.is_empty() && !key.starts_with("==") => {
                let Some(v) = parts.next() else { continue };
                // Two-token lines only: gauges/histograms/traces carry
                // more structure than one integer and stay out of JSON.
                if parts.next().is_some() {
                    continue;
                }
                (key.to_string(), v)
            }
            _ => continue,
        };
        if let Ok(n) = value.parse::<u64>() {
            map.insert(key, n);
        }
    }
    map
}

fn json_object(map: &std::collections::BTreeMap<String, u64>, indent: &str) -> String {
    let fields: Vec<String> = map
        .iter()
        .map(|(k, v)| format!("{indent}  \"{k}\": {v}"))
        .collect();
    format!("{{\n{}\n{indent}}}", fields.join(",\n"))
}

/// Renders a stats body into the `--json` document. Deterministic for a
/// given body: keys sorted, shards in section order.
fn render_stats_json(body: &str) -> String {
    // Slice the body into sections at `== ... ==` headers.
    let mut sections: Vec<(Option<String>, Vec<&str>)> = vec![(None, Vec::new())];
    for line in body.lines() {
        if let Some(header) = line.strip_prefix("== ").and_then(|l| l.strip_suffix(" ==")) {
            sections.push((Some(header.to_string()), Vec::new()));
        } else if let Some(last) = sections.last_mut() {
            last.1.push(line);
        }
    }

    let mut shard_objs: Vec<String> = Vec::new();
    let mut router_obj: Option<String> = None;
    let mut aggregate = std::collections::BTreeMap::new();
    for (header, lines) in &sections {
        let ints = section_ints(lines);
        match header.as_deref() {
            Some("router") => router_obj = Some(json_object(&ints, "  ")),
            Some(h) if h.starts_with("shard ") => {
                // `shard K replica R addr A`
                let mut parts = h.split_whitespace();
                let shard = parts.nth(1).unwrap_or("0");
                let replica = parts.nth(1).unwrap_or("0");
                let addr = parts.nth(1).unwrap_or("");
                for (k, v) in &ints {
                    *aggregate.entry(k.clone()).or_insert(0) += v;
                }
                shard_objs.push(format!(
                    "    {{\"shard\": {shard}, \"replica\": {replica}, \"addr\": \"{addr}\", \"stats\": {}}}",
                    json_object(&ints, "    ")
                ));
            }
            // `== daemon ==`-less single-daemon body: the leading
            // headerless section carries the stats.
            _ => {
                for (k, v) in &ints {
                    *aggregate.entry(k.clone()).or_insert(0) += v;
                }
            }
        }
    }

    let mut out = String::from("{\n");
    if let Some(router) = router_obj {
        out.push_str(&format!("  \"router\": {router},\n"));
    }
    out.push_str("  \"shards\": [\n");
    out.push_str(&shard_objs.join(",\n"));
    if !shard_objs.is_empty() {
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"aggregate\": {}\n}}\n",
        json_object(&aggregate, "  ")
    ));
    out
}

/// Renders a stats body (legacy `key value` lines followed by a metrics
/// registry snapshot) into the `top` dashboard text.
fn render_top(body: &str, out: &mut String) {
    let mut legacy: Vec<(&str, &str)> = Vec::new();
    let mut counters: Vec<(u64, &str)> = Vec::new();
    let mut gauges: Vec<(&str, &str, &str)> = Vec::new();
    let mut hists: Vec<(&str, u64, u64)> = Vec::new();
    let mut traces: Vec<&str> = Vec::new();
    for line in body.lines() {
        let mut parts = line.split(' ');
        match parts.next() {
            Some("counter") => {
                if let (Some(name), Some(v)) = (parts.next(), parts.next()) {
                    counters.push((v.parse().unwrap_or(0), name));
                }
            }
            Some("gauge") => {
                // gauge <name> <value> max <max>
                if let (Some(name), Some(v), Some(_), Some(m)) =
                    (parts.next(), parts.next(), parts.next(), parts.next())
                {
                    gauges.push((name, v, m));
                }
            }
            Some("histogram") => {
                // histogram <name> count <c> sum <s> buckets ...
                if let (Some(name), Some(_), Some(c), Some(_), Some(s)) = (
                    parts.next(),
                    parts.next(),
                    parts.next(),
                    parts.next(),
                    parts.next(),
                ) {
                    hists.push((name, c.parse().unwrap_or(0), s.parse().unwrap_or(0)));
                }
            }
            Some("trace") => traces.push(line),
            Some(key) if !key.is_empty() => {
                if let Some(v) = parts.next() {
                    legacy.push((key, v));
                }
            }
            _ => {}
        }
    }
    out.push_str("== daemon ==\n");
    for (k, v) in &legacy {
        out.push_str(&format!("{k:<28}{v:>12}\n"));
    }
    if !counters.is_empty() {
        counters.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
        out.push_str("\n== counters (by value) ==\n");
        for (v, name) in &counters {
            out.push_str(&format!("{v:>12}  {name}\n"));
        }
    }
    if !gauges.is_empty() {
        out.push_str("\n== gauges (current / high water) ==\n");
        for (name, v, m) in &gauges {
            out.push_str(&format!("{v:>12} /{m:>11}  {name}\n"));
        }
    }
    if !hists.is_empty() {
        out.push_str("\n== histograms (count / sum / mean) ==\n");
        for (name, c, s) in &hists {
            let mean = s.checked_div(*c).unwrap_or(0);
            out.push_str(&format!("{c:>8} {s:>14} {mean:>12}  {name}\n"));
        }
    }
    if !traces.is_empty() {
        out.push_str("\n== trace (most recent last) ==\n");
        let skip = traces.len().saturating_sub(16);
        if skip > 0 {
            out.push_str(&format!("  ... {skip} earlier events elided ...\n"));
        }
        for line in &traces[skip..] {
            out.push_str(&format!("  {line}\n"));
        }
    }
}

/// Global flags that take a value; they may appear before the command.
const GLOBAL_FLAGS: &[&str] = &[
    "--addr",
    "--retries",
    "--retry-base-ms",
    "--retry-seed",
    "--deadline",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7311".to_string());
    let opts = match net_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stridectl: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // The command is the first argument that is not a global flag/value pair.
    let mut cmd_at = None;
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if GLOBAL_FLAGS.contains(&a.as_str()) {
            skip = true;
            continue;
        }
        cmd_at = Some(i);
        break;
    }
    let Some(cmd_at) = cmd_at else {
        return usage();
    };
    let cmd = args[cmd_at].as_str();
    let rest = &args[cmd_at + 1..];

    let name_of = |rest: &[String]| -> Option<String> {
        rest.first().filter(|s| !s.starts_with("--")).cloned()
    };

    match cmd {
        "submit" => {
            let Some(workload) = name_of(rest) else {
                return usage();
            };
            let text = if let Some(path) = flag_value(rest, "--file") {
                match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("stridectl: cannot read {path}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            } else if let Some(builtin) = flag_value(rest, "--builtin") {
                let scale = match flag_value(rest, "--scale") {
                    Some(s) => match parse_scale(&s) {
                        Some(s) => s,
                        None => return usage(),
                    },
                    None => Scale::Test,
                };
                let Some(w) = workload_by_name(&builtin, scale) else {
                    eprintln!("stridectl: unknown built-in workload `{builtin}`");
                    return ExitCode::from(EXIT_USAGE);
                };
                {
                    // Tolerate a closed pipe, same as the response body path.
                    use std::io::Write;
                    let _ = writeln!(
                        std::io::stdout(),
                        "built-in {} train={} ref={}",
                        w.name,
                        w.train_args
                            .iter()
                            .map(|a| a.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                        w.ref_args
                            .iter()
                            .map(|a| a.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                }
                module_to_string(&w.module)
            } else {
                return usage();
            };
            round_trip(&addr, &opts, &Request::SubmitModule { workload, text })
        }
        "profile" | "classify" => {
            let Some(workload) = name_of(rest) else {
                return usage();
            };
            let variant = match parse_variant(rest) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("stridectl: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            let args_list = match parse_int_args(&flag_value(rest, "--args").unwrap_or_default()) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("stridectl: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            let req = if cmd == "profile" {
                Request::Profile {
                    workload,
                    variant,
                    args: args_list,
                }
            } else {
                Request::Classify {
                    workload,
                    variant,
                    args: args_list,
                }
            };
            round_trip(&addr, &opts, &req)
        }
        "prefetch" => {
            let Some(workload) = name_of(rest) else {
                return usage();
            };
            let variant = match parse_variant(rest) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("stridectl: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            let train = parse_int_args(&flag_value(rest, "--train").unwrap_or_default());
            let refa = parse_int_args(&flag_value(rest, "--ref").unwrap_or_default());
            match (train, refa) {
                (Ok(train_args), Ok(ref_args)) => round_trip(
                    &addr,
                    &opts,
                    &Request::Prefetch {
                        workload,
                        variant,
                        train_args,
                        ref_args,
                    },
                ),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("stridectl: {e}");
                    ExitCode::from(EXIT_USAGE)
                }
            }
        }
        "get-profile" => match name_of(rest) {
            Some(workload) => round_trip(&addr, &opts, &Request::GetProfile { workload }),
            None => usage(),
        },
        "merge-profile" => {
            let Some(path) = flag_value(rest, "--file") else {
                return usage();
            };
            match std::fs::read_to_string(&path) {
                Ok(entry_text) => round_trip(&addr, &opts, &Request::MergeProfile { entry_text }),
                Err(e) => {
                    eprintln!("stridectl: cannot read {path}: {e}");
                    ExitCode::from(EXIT_USAGE)
                }
            }
        }
        "stats" => {
            if rest.iter().any(|a| a == "--json") {
                stats_json(&addr, &opts)
            } else {
                round_trip(&addr, &opts, &Request::Stats)
            }
        }
        "gc" => round_trip(&addr, &opts, &Request::Gc),
        "route-update" => {
            let parsed = (
                flag_value(rest, "--shard").and_then(|v| v.parse::<u32>().ok()),
                flag_value(rest, "--replica").and_then(|v| v.parse::<u32>().ok()),
                flag_value(rest, "--to"),
            );
            let (Some(shard), Some(replica), Some(to)) = parsed else {
                return usage();
            };
            round_trip(
                &addr,
                &opts,
                &Request::RouteUpdate {
                    shard,
                    replica,
                    addr: to,
                },
            )
        }
        "health" => round_trip(&addr, &opts, &Request::Health),
        "repair" => round_trip(&addr, &opts, &Request::Repair),
        "top" => top_view(&addr, &opts),
        "shutdown" => round_trip(&addr, &opts, &Request::Shutdown),
        "serve-bench" => serve_bench(rest),
        "replay" => replay(&addr, &opts, rest),
        _ => usage(),
    }
}

/// `replay` parameters.
struct ReplayCfg {
    /// Simulated clients (each with its own request and idempotency-id
    /// stream), multiplexed over `threads` connections.
    clients: usize,
    /// Total requests across all simulated clients.
    requests: u64,
    /// Physical connections / OS threads driving the load.
    threads: usize,
    /// Corpus + traffic seed.
    seed: u64,
    /// Generated workloads in the corpus.
    workloads: usize,
    /// Percent of requests that are merges (the rest are reads).
    merge_pct: u64,
    /// Largest tolerable `shed / requests` ratio.
    max_shed_frac: f64,
    /// Optional JSON report path.
    report: Option<String>,
}

fn parse_replay_cfg(rest: &[String]) -> Result<ReplayCfg, String> {
    let mut cfg = ReplayCfg {
        clients: 1000,
        requests: 100_000,
        threads: 16,
        seed: 42,
        workloads: 8,
        merge_pct: 10,
        max_shed_frac: 0.01,
        report: flag_value(rest, "--report"),
    };
    let uint = |flag: &str, min: u64| -> Result<Option<u64>, String> {
        match flag_value(rest, flag) {
            Some(v) => v
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= min)
                .map(Some)
                .ok_or_else(|| format!("bad {flag} `{v}` (expected integer >= {min})")),
            None => Ok(None),
        }
    };
    if let Some(n) = uint("--clients", 1)? {
        cfg.clients = n as usize;
    }
    if let Some(n) = uint("--requests", 1)? {
        cfg.requests = n;
    }
    if let Some(n) = uint("--threads", 1)? {
        cfg.threads = n as usize;
    }
    if let Some(n) = uint("--seed", 0)? {
        cfg.seed = n;
    }
    if let Some(n) = uint("--workloads", 1)? {
        cfg.workloads = n as usize;
    }
    if let Some(n) = uint("--merge-pct", 0)? {
        if n > 100 {
            return Err(format!("bad --merge-pct `{n}` (expected 0..=100)"));
        }
        cfg.merge_pct = n;
    }
    if let Some(v) = flag_value(rest, "--max-shed-frac") {
        cfg.max_shed_frac = v
            .parse::<f64>()
            .ok()
            .filter(|f| (0.0..=1.0).contains(f))
            .ok_or_else(|| format!("bad --max-shed-frac `{v}` (expected 0.0..=1.0)"))?;
    }
    cfg.threads = cfg.threads.min(cfg.clients);
    Ok(cfg)
}

/// One corpus workload as replay traffic: its registration request plus
/// the profile entry each simulated merge carries.
struct ReplayWorkload {
    name: String,
    text: String,
    entry_text: String,
}

/// Builds the replay corpus: `--workloads` generated programs, each
/// profiled locally once (edge-check) so merge traffic carries genuine
/// profile entries against the registered module hash.
fn replay_corpus(cfg: &ReplayCfg) -> Result<Vec<ReplayWorkload>, String> {
    let gen = stride_genwork::GenConfig::campaign();
    (0..cfg.workloads)
        .map(|i| {
            let spec = stride_genwork::generate(cfg.seed, i as u32, &gen);
            let built = stride_genwork::build(&spec);
            let name = spec.name();
            let hash = stride_profdb::module_hash(&built.module);
            let outcome = stride_core::run_profiling(
                &built.module,
                &[0],
                ProfilingVariant::EdgeCheck,
                &PipelineConfig::default(),
            )
            .map_err(|e| format!("profiling generated workload {name}: {e}"))?;
            let entry = stride_profdb::ProfileEntry::from_run(
                name.clone(),
                hash,
                &outcome.edge,
                &outcome.stride,
            );
            Ok(ReplayWorkload {
                name,
                text: module_to_string(&built.module),
                entry_text: entry.to_text(),
            })
        })
        .collect()
}

/// Latency quantiles of one histogram, as a rendered JSON object.
fn latency_json(h: &stride_core::Histogram) -> String {
    format!(
        "{{\"count\": {}, \"sum_us\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
        h.count(),
        h.sum(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99)
    )
}

fn record_first_error(slot: &Mutex<Option<String>>, message: impl FnOnce() -> String) {
    if let Ok(mut guard) = slot.lock() {
        if guard.is_none() {
            *guard = Some(message());
        }
    }
}

/// Streams the seeded trace and asserts the service invariants. See the
/// usage text for the contract; exit codes: 0 all invariants held,
/// [`EXIT_SERVER`] an invariant failed, [`EXIT_TRANSPORT`] setup could
/// not reach the daemon, [`EXIT_USAGE`] bad flags.
fn replay(addr: &str, opts: &NetOpts, rest: &[String]) -> ExitCode {
    let cfg = match parse_replay_cfg(rest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("stridectl: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let corpus = match replay_corpus(&cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("stridectl: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    // Register the corpus and seed one entry per workload so reads never
    // race the first merge.
    let acked: Vec<AtomicU64> = corpus.iter().map(|_| AtomicU64::new(0)).collect();
    let mut setup = match Client::connect_with(addr, opts.policy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("stridectl: cannot connect to {addr}: {e}");
            return ExitCode::from(EXIT_TRANSPORT);
        }
    };
    setup.set_id_state(0x5e7_0000_0000);
    for (w, wl) in corpus.iter().enumerate() {
        for req in [
            Request::SubmitModule {
                workload: wl.name.clone(),
                text: wl.text.clone(),
            },
            Request::MergeProfile {
                entry_text: wl.entry_text.clone(),
            },
        ] {
            match setup.call(&req) {
                Ok(Response::Ok(_)) => {}
                Ok(Response::Err { kind, message, .. }) => {
                    eprintln!(
                        "stridectl: replay setup for {}: [{kind}] {message}",
                        wl.name
                    );
                    return ExitCode::from(EXIT_SERVER);
                }
                Err(e) => {
                    eprintln!("stridectl: replay setup for {}: {e}", wl.name);
                    return ExitCode::from(EXIT_TRANSPORT);
                }
            }
        }
        acked[w].fetch_add(1, Ordering::Relaxed);
    }

    // Client-side observability: latency histograms (microseconds) and
    // outcome counters, shared across the driver threads.
    let reg = stride_core::Registry::new();
    let merge_hist = reg.histogram("replay.latency.merge.us");
    let read_hist = reg.histogram("replay.latency.read.us");
    let ok_count = reg.counter("replay.ok");
    let shed_count = reg.counter("replay.shed");
    let failed_count = reg.counter("replay.failed");
    let first_error: Mutex<Option<String>> = Mutex::new(None);

    // Per-client quotas: --requests split evenly, remainder to the
    // lowest client ids; thread t drives clients t, t+T, t+2T, ...
    let per_client = cfg.requests / cfg.clients as u64;
    let remainder = cfg.requests % cfg.clients as u64;
    let quota = |c: usize| per_client + u64::from((c as u64) < remainder);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let (corpus, acked, cfg) = (&corpus, &acked, &cfg);
            let (merge_hist, read_hist) = (merge_hist.clone(), read_hist.clone());
            let (ok_count, shed_count, failed_count) =
                (ok_count.clone(), shed_count.clone(), failed_count.clone());
            let first_error = &first_error;
            scope.spawn(move || {
                let mut client = match Client::connect_with(addr, opts.policy) {
                    Ok(c) => c,
                    Err(e) => {
                        let n: u64 = (t..cfg.clients).step_by(cfg.threads).map(quota).sum();
                        failed_count.add(n);
                        record_first_error(first_error, || {
                            format!("thread {t}: cannot connect: {e}")
                        });
                        return;
                    }
                };
                // (sim client id, its rng, requests left, merges issued)
                let mut sims: Vec<(usize, stride_genwork::Rng, u64, u64)> = (t..cfg.clients)
                    .step_by(cfg.threads)
                    .map(|c| {
                        let rng = stride_genwork::Rng::for_workload(
                            cfg.seed ^ 0x5eed_c11e_717a_11e5,
                            c as u32,
                        );
                        (c, rng, quota(c), 0u64)
                    })
                    .collect();
                let mut active = sims.iter().filter(|s| s.2 > 0).count();
                // Round-robin one request per live client per sweep, so
                // the wire sees interleaved client streams rather than
                // one client's burst at a time.
                while active > 0 {
                    for (c, rng, left, merges) in sims.iter_mut() {
                        if *left == 0 {
                            continue;
                        }
                        *left -= 1;
                        if *left == 0 {
                            active -= 1;
                        }
                        let w = rng.index(corpus.len());
                        let is_merge = rng.next() % 100 < cfg.merge_pct;
                        let req = if is_merge {
                            // Disjoint per-simulated-client idempotency-id
                            // streams: the id state encodes (client, seq).
                            client.set_id_state(((*c as u64 + 1) << 32) | *merges);
                            *merges += 1;
                            Request::MergeProfile {
                                entry_text: corpus[w].entry_text.clone(),
                            }
                        } else {
                            Request::GetProfile {
                                workload: corpus[w].name.clone(),
                            }
                        };
                        let sent = Instant::now();
                        let result = client.call(&req);
                        let us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                        if is_merge {
                            merge_hist.observe(us);
                        } else {
                            read_hist.observe(us);
                        }
                        match result {
                            Ok(Response::Ok(_)) => {
                                ok_count.inc();
                                if is_merge {
                                    acked[w].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(Response::Err {
                                kind: ErrorKind::Busy | ErrorKind::Unavailable,
                                ..
                            }) => shed_count.inc(),
                            Ok(Response::Err { kind, message, .. }) => {
                                failed_count.inc();
                                record_first_error(first_error, || {
                                    format!("client {c}: [{kind}] {message}")
                                });
                            }
                            Err(e) => {
                                failed_count.inc();
                                record_first_error(first_error, || format!("client {c}: {e}"));
                                // Reconnect and keep draining the quota.
                                if let Ok(fresh) = Client::connect_with(addr, opts.policy) {
                                    client = fresh;
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let (ok, shed, failed) = (ok_count.get(), shed_count.get(), failed_count.get());
    let issued = merge_hist.count() + read_hist.count();
    let acked_merges: u64 = acked.iter().map(|a| a.load(Ordering::Relaxed)).sum();
    println!(
        "replay: {} clients over {} threads, {} workloads, seed 0x{:x}",
        cfg.clients, cfg.threads, cfg.workloads, cfg.seed
    );
    println!(
        "replay: {issued} requests in {wall_s:.3}s ({:.1} req/s): ok {ok}, shed {shed}, \
         failed {failed}, acked merges {acked_merges}",
        issued as f64 / wall_s.max(1e-9)
    );
    for (label, h) in [("merge", &merge_hist), ("read", &read_hist)] {
        println!(
            "replay: {label} latency us: count {} p50 {} p90 {} p99 {}",
            h.count(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99)
        );
    }

    // Invariant 1 — the latency histograms account for every issued
    // request (the obs layer saw the whole trace).
    let mut violations: Vec<String> = Vec::new();
    if issued != cfg.requests {
        violations.push(format!(
            "latency histograms cover {issued} requests, expected {}",
            cfg.requests
        ));
    }
    // Invariant 2 — hard failures are not tolerated at any rate.
    if failed > 0 {
        let detail = first_error
            .lock()
            .map(|g| g.clone().unwrap_or_default())
            .unwrap_or_default();
        violations.push(format!("{failed} failed requests (first: {detail})"));
    }
    // Invariant 3 — shedding stays within budget.
    let shed_frac = shed as f64 / cfg.requests as f64;
    if shed_frac > cfg.max_shed_frac {
        violations.push(format!(
            "shed fraction {shed_frac:.4} exceeds budget {:.4}",
            cfg.max_shed_frac
        ));
    }
    // Invariant 4 — no acked merge may be lost: every workload's stored
    // entry must carry at least as many runs as merges acked to clients.
    // (Strictly more is legal only when sheds happened: a merge the
    // router could not acknowledge may still drain to replicas later.)
    let mut workload_rows: Vec<(String, u64, u64)> = Vec::new();
    for (w, wl) in corpus.iter().enumerate() {
        let expect = acked[w].load(Ordering::Relaxed);
        let mut runs = None;
        for _ in 0..10 {
            match setup.call(&Request::GetProfile {
                workload: wl.name.clone(),
            }) {
                Ok(Response::Ok(body)) => {
                    match stride_profdb::ProfileEntry::from_text(&body) {
                        Ok(entry) => runs = Some(entry.runs),
                        Err(e) => violations.push(format!("{}: unreadable entry: {e}", wl.name)),
                    }
                    break;
                }
                Ok(Response::Err {
                    kind: ErrorKind::Busy | ErrorKind::Unavailable,
                    retry_after_ms,
                    ..
                }) => {
                    std::thread::sleep(std::time::Duration::from_millis(
                        retry_after_ms.unwrap_or(100),
                    ));
                }
                Ok(Response::Err { kind, message, .. }) => {
                    violations.push(format!("{}: readback [{kind}] {message}", wl.name));
                    break;
                }
                Err(e) => {
                    violations.push(format!("{}: readback transport: {e}", wl.name));
                    break;
                }
            }
        }
        let got = match runs {
            Some(r) => r,
            None => {
                if !violations.iter().any(|v| v.starts_with(&wl.name)) {
                    violations.push(format!("{}: readback kept shedding", wl.name));
                }
                0
            }
        };
        if got < expect {
            violations.push(format!(
                "{}: acked-merge loss — db has {got} runs, {expect} acked",
                wl.name
            ));
        } else if shed == 0 && failed == 0 && got != expect {
            violations.push(format!(
                "{}: db has {got} runs, expected exactly {expect} (no sheds to explain it)",
                wl.name
            ));
        }
        workload_rows.push((wl.name.clone(), expect, got));
    }
    println!(
        "replay: verified {} workloads: acked merges all present",
        workload_rows.len()
    );

    // Server-side observability round trip, folded into the report.
    let server_stats = match setup.call(&Request::Stats) {
        Ok(Response::Ok(body)) => Some(body),
        _ => {
            violations.push("stats round trip failed after replay".to_string());
            None
        }
    };
    let stat_counter = |name: &str| -> Option<u64> {
        let body = server_stats.as_deref()?;
        body.lines()
            .filter_map(|l| l.strip_prefix(&format!("counter {name} ")))
            .filter_map(|v| v.parse::<u64>().ok())
            .next()
    };

    if let Some(path) = &cfg.report {
        let mut out = String::from("{\n  \"bench\": \"replay\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"clients\": {}, \"requests\": {}, \"threads\": {}, \
             \"seed\": {}, \"workloads\": {}, \"merge_pct\": {}, \"max_shed_frac\": {}}},\n",
            cfg.clients,
            cfg.requests,
            cfg.threads,
            cfg.seed,
            cfg.workloads,
            cfg.merge_pct,
            cfg.max_shed_frac
        ));
        out.push_str(&format!(
            "  \"totals\": {{\"ok\": {ok}, \"shed\": {shed}, \"failed\": {failed}, \
             \"acked_merges\": {acked_merges}, \"wall_s\": {wall_s:.3}}},\n"
        ));
        out.push_str(&format!(
            "  \"latency_us\": {{\"merge\": {}, \"read\": {}}},\n",
            latency_json(&merge_hist),
            latency_json(&read_hist)
        ));
        out.push_str(&format!(
            "  \"router_forwarded\": {},\n",
            stat_counter("router.forwarded").map_or("null".into(), |v| v.to_string())
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, (name, expect, got)) in workload_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{name}\", \"acked\": {expect}, \"runs\": {got}}}{}\n",
                if i + 1 == workload_rows.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n  \"violations\": [");
        for (i, v) in violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            for c in v.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push_str("]\n}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("stridectl: cannot write --report file {path}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
        eprintln!("replay report written to {path}");
    }

    if violations.is_empty() {
        println!("replay: all invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("stridectl: replay invariant violated: {v}");
        }
        ExitCode::from(EXIT_SERVER)
    }
}

struct BenchRow {
    jobs: usize,
    requests: usize,
    wall_s: f64,
    req_per_s: f64,
    errors: usize,
}

/// Starts a loopback daemon and measures end-to-end request throughput at
/// each `--jobs` level: every client thread opens its own connection and
/// issues `--requests` alternating profile/classify round trips.
fn serve_bench(rest: &[String]) -> ExitCode {
    let jobs_levels: Vec<usize> = match flag_value(rest, "--jobs")
        .unwrap_or_else(|| "1,4,8".to_string())
        .split(',')
        .map(|p| p.parse::<usize>().map_err(|_| p.to_string()))
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(v) if !v.is_empty() && v.iter().all(|&j| j >= 1) => v,
        _ => return usage(),
    };
    let requests: usize = match flag_value(rest, "--requests") {
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => return usage(),
        },
        None => 64,
    };
    let scale = match flag_value(rest, "--scale") {
        Some(s) => match parse_scale(&s) {
            Some(s) => s,
            None => return usage(),
        },
        None => Scale::Test,
    };
    let builtin = flag_value(rest, "--workload").unwrap_or_else(|| "mcf".to_string());
    let Some(w) = workload_by_name(&builtin, scale) else {
        eprintln!("stridectl: unknown built-in workload `{builtin}`");
        return ExitCode::FAILURE;
    };

    let max_jobs = jobs_levels.iter().copied().max().unwrap_or(1);
    let db_root =
        std::env::temp_dir().join(format!("stridectl-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&db_root);
    let mut config = ServerConfig::loopback(ServiceConfig::new(db_root.clone()));
    config.workers = max_jobs;
    config.queue_cap = max_jobs * 4;
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stridectl: cannot start loopback daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();

    // Register the module once; warm the run cache so every level measures
    // service/wire throughput, not first-run simulation cost.
    let setup = (|| -> Result<(), String> {
        let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
        let resp = c
            .call(&Request::SubmitModule {
                workload: w.name.to_string(),
                text: module_to_string(&w.module),
            })
            .map_err(|e| e.to_string())?;
        if let Response::Err { kind, message, .. } = resp {
            return Err(format!("[{kind}] {message}"));
        }
        let resp = c
            .call(&Request::Profile {
                workload: w.name.to_string(),
                variant: ProfilingVariant::EdgeCheck,
                args: w.train_args.clone(),
            })
            .map_err(|e| e.to_string())?;
        if let Response::Err { kind, message, .. } = resp {
            return Err(format!("[{kind}] {message}"));
        }
        Ok(())
    })();
    if let Err(e) = setup {
        eprintln!("stridectl: serve-bench setup failed: {e}");
        server.shutdown_and_join();
        let _ = std::fs::remove_dir_all(&db_root);
        return ExitCode::FAILURE;
    }

    println!(
        "serve-bench: workload {} ({} requests per client)",
        w.name, requests
    );
    println!(
        "{:>5}  {:>9}  {:>9}  {:>10}  {:>7}",
        "jobs", "requests", "wall(s)", "req/s", "errors"
    );
    let mut rows = Vec::new();
    for &jobs in &jobs_levels {
        let start = Instant::now();
        let errors: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    let w = &w;
                    scope.spawn(move || {
                        let Ok(mut client) = Client::connect(addr) else {
                            return requests;
                        };
                        let mut errors = 0usize;
                        for i in 0..requests {
                            let req = if i % 2 == 0 {
                                Request::Profile {
                                    workload: w.name.to_string(),
                                    variant: ProfilingVariant::EdgeCheck,
                                    args: w.train_args.clone(),
                                }
                            } else {
                                Request::Classify {
                                    workload: w.name.to_string(),
                                    variant: ProfilingVariant::EdgeCheck,
                                    args: w.train_args.clone(),
                                }
                            };
                            match client.call(&req) {
                                Ok(Response::Ok(_)) => {}
                                Ok(Response::Err { .. }) | Err(_) => errors += 1,
                            }
                        }
                        errors
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(requests))
                .sum()
        });
        let wall_s = start.elapsed().as_secs_f64();
        let total = jobs * requests;
        let req_per_s = if wall_s > 0.0 {
            total as f64 / wall_s
        } else {
            0.0
        };
        println!("{jobs:>5}  {total:>9}  {wall_s:>9.3}  {req_per_s:>10.1}  {errors:>7}");
        rows.push(BenchRow {
            jobs,
            requests: total,
            wall_s,
            req_per_s,
            errors,
        });
    }

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&db_root);

    if let Some(path) = flag_value(rest, "--bench-json") {
        // Scaling quality per row: throughput relative to the jobs=1 row
        // of the same invocation. A multi-client row that fails to beat
        // the single client by at least 20% is flagged `flat_scaling` so
        // regression tooling can spot serialization in the service path
        // without parsing throughput numbers.
        let base_rps = rows
            .iter()
            .find(|r| r.jobs == 1)
            .map(|r| r.req_per_s)
            .filter(|&rps| rps > 0.0);
        let mut out = String::from("{\n  \"bench\": \"serve-bench\",\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", w.name));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let speedup = base_rps.map(|b| r.req_per_s / b);
            let flat = r.jobs > 1 && speedup.is_some_and(|s| s < 1.2);
            out.push_str(&format!(
                "    {{\"jobs\": {}, \"requests\": {}, \"wall_s\": {:.6}, \"req_per_s\": {:.1}, \"errors\": {}, \"speedup_vs_jobs1\": {}, \"flat_scaling\": {}}}{}\n",
                r.jobs,
                r.requests,
                r.wall_s,
                r.req_per_s,
                r.errors,
                speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
                flat,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("stridectl: cannot write --bench-json file {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("serve-bench summary written to {path}");
    }
    let failed = rows.iter().any(|r| r.errors > 0);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
