//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--figure N] [--scale test|paper]
//! ```
//!
//! Without `--figure`, every figure (15–25) is produced. `--scale test`
//! runs tiny inputs for a quick smoke pass; the default `paper` scale
//! produces the numbers recorded in EXPERIMENTS.md.

use stride_bench::*;
use stride_core::{PipelineConfig, ProfilingVariant};
use stride_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut figure: Option<u32> = None;
    let mut scale = Scale::Paper;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                i += 1;
                figure = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }

    let config = PipelineConfig::default();
    let wanted = |n: u32| figure.is_none() || figure == Some(n);

    if wanted(15) {
        println!("== Figure 15: SPECINT2000 benchmarks ==");
        println!("{}", fig15_table(scale));
    }
    if wanted(16) {
        println!("== Figure 16: speedup of stride prefetching ==");
        let rows = fig16_speedups(scale, &ProfilingVariant::EVALUATED, &config)
            .expect("fig16 pipeline");
        println!("{}", render_speedups(&rows));
    }
    if wanted(17) {
        println!("== Figure 17: in-loop vs out-loop load references ==");
        println!("{:<14}{:>10}{:>10}", "benchmark", "in-loop", "out-loop");
        let mut avg = (0.0, 0.0);
        let rows = fig17_load_mix(scale, &config).expect("fig17 pipeline");
        let n = rows.len() as f64;
        for (name, inf, outf) in rows {
            println!("{name:<14}{:>9.1}%{:>9.1}%", inf * 100.0, outf * 100.0);
            avg.0 += inf;
            avg.1 += outf;
        }
        println!("{:<14}{:>9.1}%{:>9.1}%\n", "average", avg.0 / n * 100.0, avg.1 / n * 100.0);
    }
    if wanted(18) || wanted(19) {
        let rows = fig18_19_distributions(scale, &config).expect("fig18/19 pipeline");
        if wanted(18) {
            println!("== Figure 18: out-loop loads by stride property ==");
            let out_rows: Vec<_> = rows.iter().map(|(n, o, _)| (*n, *o)).collect();
            println!("{}", render_distribution(&out_rows));
        }
        if wanted(19) {
            println!("== Figure 19: in-loop loads by stride property ==");
            let in_rows: Vec<_> = rows.iter().map(|(n, _, i)| (*n, *i)).collect();
            println!("{}", render_distribution(&in_rows));
        }
    }
    if wanted(20) || wanted(21) || wanted(22) {
        let rows = fig20_22_overheads(scale, &ProfilingVariant::EVALUATED, &config)
            .expect("fig20-22 pipeline");
        if wanted(20) {
            println!("== Figure 20: profiling overhead over edge profiling alone ==");
            println!("{}", render_overheads(&rows, 0));
        }
        if wanted(21) {
            println!("== Figure 21: % load references processed by strideProf ==");
            println!("{}", render_overheads(&rows, 1));
        }
        if wanted(22) {
            println!("== Figure 22: % load references processed by LFU ==");
            println!("{}", render_overheads(&rows, 2));
        }
    }
    if wanted(23) || wanted(24) || wanted(25) {
        println!("== Figures 23-25: sensitivity to input data sets (sample-edge-check) ==");
        let rows = fig23_25_sensitivity(scale, &config).expect("fig23-25 pipeline");
        println!("{}", render_sensitivity(&rows));
    }
}

fn usage() -> ! {
    eprintln!("usage: repro [--figure N] [--scale test|paper]");
    std::process::exit(2);
}
