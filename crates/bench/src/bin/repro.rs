//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--figure N] [--scale test|paper] [--jobs N] [--bench-json PATH]
//!       [--inject PLAN] [--no-fuse]
//! ```
//!
//! Without `--figure`, every figure (15–25) is produced. `--scale test`
//! runs tiny inputs for a quick smoke pass; the default `paper` scale
//! produces the numbers recorded in EXPERIMENTS.md.
//!
//! `--inject` applies a deterministic fault plan (see
//! `stride_core::FaultPlan::parse`) to the speedup pipeline: e.g.
//! `--inject 'seed=42;fuel=100000@181.mcf'` forces one workload's
//! profiling run out of fuel. Figures degrade gracefully — failed rows
//! are replaced by `!!` diagnostic lines while every other row is
//! produced, byte-identically at any `--jobs` level.
//!
//! Runs fan out over `--jobs` worker threads (default: the machine's
//! available parallelism) and repeated simulations are shared across
//! figures through a run cache; figure output is byte-identical at every
//! `--jobs` level. `--bench-json` writes a machine-readable summary of
//! wall-clock, simulation throughput and cache effectiveness per figure.

use std::time::Instant;

use stride_bench::*;
use stride_core::{
    instrument, profiling_instr_count, FaultInjector, FaultPlan, PipelineConfig, ProfilingVariant,
    Registry, TraceEvent,
};
use stride_workloads::{all_workloads, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut figure: Option<u32> = None;
    let mut scale = Scale::Paper;
    let mut jobs = default_jobs();
    let mut bench_json: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut inject: Option<FaultPlan> = None;
    let mut no_fuse = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                i += 1;
                let n: u32 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if !(15..=25).contains(&n) {
                    eprintln!("repro: --figure {n} is out of range (the paper has figures 15-25)");
                    std::process::exit(2);
                }
                figure = Some(n);
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match parse_jobs(args.get(i).map(String::as_str)) {
                    Ok(n) => n,
                    Err(msg) => {
                        eprintln!("repro: {msg}");
                        std::process::exit(2);
                    }
                };
            }
            "--bench-json" => {
                i += 1;
                bench_json = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--metrics-json" => {
                i += 1;
                metrics_json = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--inject" => {
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_else(|| usage());
                inject = match FaultPlan::parse(&spec) {
                    Ok(plan) => Some(plan),
                    Err(e) => {
                        eprintln!("repro: {e}");
                        std::process::exit(2);
                    }
                };
            }
            "--no-fuse" => no_fuse = true,
            _ => usage(),
        }
        i += 1;
    }

    let mut config = PipelineConfig::default();
    // A/B switch for the self-applied-PGO work: figures are byte-identical
    // either way, only wall-clock moves.
    config.vm.fuse = !no_fuse;
    let cache = RunCache::new();
    let injector = inject.map(FaultInjector::new);
    if let Some(inj) = &injector {
        println!("fault plan: {}", inj.plan().spec());
    }
    let ctx = FigureCtx::new(scale, &config, &cache, jobs).with_injector(injector.as_ref());
    let mut summary = PerfSummary {
        scale: match scale {
            Scale::Test => "test".to_string(),
            Scale::Paper => "paper".to_string(),
        },
        jobs,
        fuse: !no_fuse,
        ..PerfSummary::default()
    };
    let wanted = |n: u32| figure.is_none() || figure == Some(n);

    // Times `body` and attributes the run-cache volume delta to `label`.
    let measured = |label: &str, summary: &mut PerfSummary, body: &mut dyn FnMut()| {
        let before = cache.stats();
        let start = Instant::now();
        body();
        let wall = start.elapsed();
        let after = cache.stats();
        summary.figures.push(FigurePerf {
            figure: label.to_string(),
            wall,
            sim_loads: after.sim_loads - before.sim_loads,
            sim_accesses: after.sim_accesses - before.sim_accesses,
        });
    };

    if wanted(15) {
        measured("fig15", &mut summary, &mut || {
            println!("== Figure 15: SPECINT2000 benchmarks ==");
            println!("{}", fig15_table(scale));
        });
    }
    if wanted(16) {
        measured("fig16", &mut summary, &mut || {
            println!("== Figure 16: speedup of stride prefetching ==");
            let partial = fig16_speedups(&ctx, &ProfilingVariant::EVALUATED);
            print!("{}", render_speedups(&partial.rows));
            print!("{}", render_diagnostics(&partial.failures));
            println!();
        });
    }
    if wanted(17) {
        measured("fig17", &mut summary, &mut || {
            println!("== Figure 17: in-loop vs out-loop load references ==");
            println!("{:<14}{:>10}{:>10}", "benchmark", "in-loop", "out-loop");
            let mut avg = (0.0, 0.0);
            let partial = fig17_load_mix(&ctx);
            let n = partial.rows.len().max(1) as f64;
            for (name, inf, outf) in &partial.rows {
                println!("{name:<14}{:>9.1}%{:>9.1}%", inf * 100.0, outf * 100.0);
                avg.0 += inf;
                avg.1 += outf;
            }
            println!(
                "{:<14}{:>9.1}%{:>9.1}%",
                "average",
                avg.0 / n * 100.0,
                avg.1 / n * 100.0
            );
            print!("{}", render_diagnostics(&partial.failures));
            println!();
        });
    }
    if wanted(18) || wanted(19) {
        measured("fig18_19", &mut summary, &mut || {
            let partial = fig18_19_distributions(&ctx);
            if wanted(18) {
                println!("== Figure 18: out-loop loads by stride property ==");
                let out_rows: Vec<_> = partial.rows.iter().map(|(n, o, _)| (*n, *o)).collect();
                print!("{}", render_distribution(&out_rows));
                print!("{}", render_diagnostics(&partial.failures));
                println!();
            }
            if wanted(19) {
                println!("== Figure 19: in-loop loads by stride property ==");
                let in_rows: Vec<_> = partial.rows.iter().map(|(n, _, i)| (*n, *i)).collect();
                print!("{}", render_distribution(&in_rows));
                print!("{}", render_diagnostics(&partial.failures));
                println!();
            }
        });
    }
    if wanted(20) || wanted(21) || wanted(22) {
        measured("fig20_22", &mut summary, &mut || {
            let partial = fig20_22_overheads(&ctx, &ProfilingVariant::EVALUATED);
            if wanted(20) {
                println!("== Figure 20: profiling overhead over edge profiling alone ==");
                print!("{}", render_overheads(&partial.rows, 0));
                print!("{}", render_diagnostics(&partial.failures));
                println!();
            }
            if wanted(21) {
                println!("== Figure 21: % load references processed by strideProf ==");
                print!("{}", render_overheads(&partial.rows, 1));
                print!("{}", render_diagnostics(&partial.failures));
                println!();
            }
            if wanted(22) {
                println!("== Figure 22: % load references processed by LFU ==");
                print!("{}", render_overheads(&partial.rows, 2));
                print!("{}", render_diagnostics(&partial.failures));
                println!();
            }
        });
    }
    if wanted(23) || wanted(24) || wanted(25) {
        measured("fig23_25", &mut summary, &mut || {
            println!("== Figures 23-25: sensitivity to input data sets (sample-edge-check) ==");
            let partial = fig23_25_sensitivity(&ctx);
            print!("{}", render_sensitivity(&partial.rows));
            print!("{}", render_diagnostics(&partial.failures));
            println!();
        });
    }

    let stats = cache.stats();
    summary.run_cache_hits = stats.hits;
    summary.run_cache_misses = stats.misses;
    if let Some(path) = bench_json {
        if let Err(e) = std::fs::write(&path, summary.to_json()) {
            eprintln!("repro: cannot write --bench-json file {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("perf summary written to {path}");
    }
    if let Some(path) = metrics_json {
        let reg = metrics_registry(&summary, &stats, scale, &config);
        if let Err(e) = std::fs::write(&path, reg.snapshot_json()) {
            eprintln!("repro: cannot write --metrics-json file {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics snapshot written to {path}");
    }
}

/// Builds the deterministic metrics snapshot of one repro invocation.
///
/// Every recorded quantity is logical — simulated loads and accesses,
/// run-cache hit counts, static instrumentation footprints — never
/// wall-clock or thread-dependent, so the snapshot is byte-identical at
/// any `--jobs` level for the same figure set, scale and fault plan.
fn metrics_registry(
    summary: &PerfSummary,
    cache: &stride_core::RunCacheStats,
    scale: Scale,
    config: &PipelineConfig,
) -> Registry {
    let reg = Registry::new();
    reg.add("repro.cache.hits", cache.hits);
    reg.add("repro.cache.misses", cache.misses);
    reg.add("repro.cache.sim_loads", cache.sim_loads);
    reg.add("repro.cache.sim_accesses", cache.sim_accesses);
    let loads_hist = reg.histogram("repro.figure.sim_loads");
    for (i, f) in summary.figures.iter().enumerate() {
        reg.add(&format!("repro.figure.{}.sim_loads", f.figure), f.sim_loads);
        reg.add(
            &format!("repro.figure.{}.sim_accesses", f.figure),
            f.sim_accesses,
        );
        loads_hist.observe(f.sim_loads);
        // Figures run serially; their index is the logical clock.
        reg.trace(TraceEvent {
            clock: i as u64,
            label: "repro.figure",
            a: f.sim_loads,
            b: f.sim_accesses,
        });
    }
    // Static instrumentation footprint per evaluated variant: how many
    // profiling pseudo-instructions each method plants across the
    // benchmark suite (the code-growth side of Figs. 20-22).
    for variant in ProfilingVariant::EVALUATED {
        let count: u64 = all_workloads(scale)
            .iter()
            .map(|w| {
                profiling_instr_count(
                    &instrument(&w.module, variant.method(), &config.prefetch).module,
                ) as u64
            })
            .sum();
        reg.add(&format!("repro.instr.{variant}"), count);
    }
    reg
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--figure N] [--scale test|paper] [--jobs N] [--bench-json PATH]\n\
         \x20            [--metrics-json PATH] [--inject PLAN] [--no-fuse]\n\
         \n\
         \x20 --figure N         produce only figure N (15-25); default: all\n\
         \x20 --scale test|paper workload scale (default: paper)\n\
         \x20 --jobs N           worker threads (default: available parallelism; must be >= 1)\n\
         \x20 --bench-json PATH  write a machine-readable perf summary (wall-clock,\n\
         \x20                    simulated loads/sec, run-cache hits) to PATH\n\
         \x20 --metrics-json PATH  write the deterministic metrics snapshot (logical\n\
         \x20                    counters/histograms/trace; byte-identical at any --jobs)\n\
         \x20 --inject PLAN      deterministic fault plan, e.g. 'seed=42;fuel=1000@181.mcf'\n\
         \x20                    (failed rows degrade to !! diagnostics; others complete)\n\
         \x20 --no-fuse          disable superinstruction fusion in the interpreter\n\
         \x20                    (A/B baseline; figure output is byte-identical)"
    );
    std::process::exit(2);
}
