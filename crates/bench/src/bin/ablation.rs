//! Ablation sweeps over the design choices DESIGN.md calls out: the
//! classification thresholds, the prefetch-distance cap, the sampling
//! parameters, and the trip-count threshold. Each sweep reports the
//! geometric-mean speedup (and, for sampling, the profiling overhead) on
//! the three headline benchmarks.
//!
//! ```text
//! ablation [--scale test|paper]
//! ```

use stride_bench::geomean;
use stride_core::{
    measure_overhead, measure_speedup, PipelineConfig, PrefetchConfig, ProfilingVariant,
};
use stride_workloads::{workload_by_name, Scale, Workload};

fn headline(scale: Scale) -> Vec<Workload> {
    ["mcf", "gap", "parser"]
        .iter()
        .map(|n| workload_by_name(n, scale).expect("known benchmark"))
        .collect()
}

fn suite_speedup(workloads: &[Workload], config: &PipelineConfig) -> f64 {
    let speedups: Vec<f64> = workloads
        .iter()
        .map(|w| {
            measure_speedup(
                &w.module,
                &w.train_args,
                &w.ref_args,
                ProfilingVariant::EdgeCheck,
                config,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .speedup
        })
        .collect();
    geomean(&speedups)
}

fn main() {
    let scale = match std::env::args().nth(2).as_deref() {
        Some("test") => Scale::Test,
        _ => Scale::Paper,
    };
    let workloads = headline(scale);
    let base = PipelineConfig::default();

    println!("== Ablation: SSST threshold (paper: 0.70) ==");
    for t in [0.5, 0.6, 0.7, 0.8, 0.9, 0.99] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                ssst_threshold: t,
                ..base.prefetch
            },
            ..base
        };
        println!("  SSST_threshold {t:<5}: geomean speedup {:.3}", suite_speedup(&workloads, &config));
    }

    println!("\n== Ablation: max prefetch distance C (paper: 8) ==");
    for c in [1, 2, 4, 8, 16, 32] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                max_prefetch_distance: c,
                ..base.prefetch
            },
            ..base
        };
        println!("  C = {c:<3}: geomean speedup {:.3}", suite_speedup(&workloads, &config));
    }

    println!("\n== Ablation: trip-count threshold TT (paper: 128) ==");
    for tt in [16, 64, 128, 512, 2048] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                trip_count_threshold: tt,
                ..base.prefetch
            },
            ..base
        };
        println!("  TT = {tt:<5}: geomean speedup {:.3}", suite_speedup(&workloads, &config));
    }

    println!("\n== Ablation: WSST prefetching (paper: disabled) ==");
    for enabled in [false, true] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                enable_wsst_prefetch: enabled,
                ..base.prefetch
            },
            ..base
        };
        println!(
            "  WSST prefetch {}: geomean speedup {:.3}",
            if enabled { "on " } else { "off" },
            suite_speedup(&workloads, &config)
        );
    }

    println!("\n== Ablation: dependent-load prefetching (§6 future work #2) ==");
    for enabled in [false, true] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                enable_dependent_prefetch: enabled,
                ..base.prefetch
            },
            ..base
        };
        // perlbmk is the interesting case: its churned op chain defeats
        // stride prefetching but not dependence-based prefetching.
        let perl = workload_by_name("perlbmk", scale).unwrap();
        let s = measure_speedup(
            &perl.module,
            &perl.train_args,
            &perl.ref_args,
            ProfilingVariant::EdgeCheck,
            &config,
        )
        .expect("perlbmk");
        println!(
            "  dependent prefetch {}: headline geomean {:.3}, perlbmk {:.3}",
            if enabled { "on " } else { "off" },
            suite_speedup(&workloads, &config),
            s.speedup
        );
    }

    println!("\n== Ablation: profiling variant overhead vs. speedup ==");
    for variant in [
        ProfilingVariant::EdgeCheck,
        ProfilingVariant::SampleEdgeCheck,
        ProfilingVariant::NaiveLoop,
        ProfilingVariant::SampleNaiveLoop,
        ProfilingVariant::NaiveAll,
        ProfilingVariant::SampleNaiveAll,
        ProfilingVariant::BlockCheck,
        ProfilingVariant::TwoPass,
    ] {
        let mut speedups = Vec::new();
        let mut overheads = Vec::new();
        for w in &workloads {
            let s = measure_speedup(&w.module, &w.train_args, &w.ref_args, variant, &base)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let o = measure_overhead(&w.module, &w.train_args, variant, &base)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            speedups.push(s.speedup);
            overheads.push(o.overhead);
        }
        println!(
            "  {variant:<20} geomean speedup {:.3}, mean overhead {:>6.1}%",
            geomean(&speedups),
            overheads.iter().sum::<f64>() / overheads.len() as f64 * 100.0
        );
    }
}
