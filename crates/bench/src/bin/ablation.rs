//! Ablation sweeps over the design choices DESIGN.md calls out: the
//! classification thresholds, the prefetch-distance cap, the sampling
//! parameters, and the trip-count threshold. Each sweep reports the
//! geometric-mean speedup (and, for sampling, the profiling overhead) on
//! the three headline benchmarks.
//!
//! ```text
//! ablation [--scale test|paper] [--jobs N]
//! ```
//!
//! The sweep points fan out over `--jobs` worker threads and share one run
//! cache: prefetch-parameter sweeps only change the transformed binary, so
//! every sweep point reuses the same baselines and edge-only runs.

use stride_bench::{default_jobs, geomean, parallel_map_isolated, parse_jobs, RunCache};
use stride_core::{ClassifyThresholds, PipelineConfig, PrefetchConfig, ProfilingVariant};
use stride_workloads::{workload_by_name, Scale, Workload};

fn headline(scale: Scale) -> Vec<Workload> {
    ["mcf", "gap", "parser"]
        .iter()
        .map(|n| workload_by_name(n, scale).expect("known benchmark"))
        .collect()
}

/// Geomean speedup over the workloads that completed; failed or panicked
/// units are reported on stderr and skipped, so one broken sweep point
/// does not abort the whole ablation.
fn suite_speedup(
    cache: &RunCache,
    workloads: &[Workload],
    config: &PipelineConfig,
    jobs: usize,
) -> f64 {
    let results = parallel_map_isolated(workloads, jobs, |_, w| {
        cache
            .speedup(
                &w.module,
                &w.train_args,
                &w.ref_args,
                ProfilingVariant::EdgeCheck,
                config,
            )
            .map(|out| out.speedup)
    });
    let mut speedups = Vec::new();
    for (w, r) in workloads.iter().zip(results) {
        match r {
            Ok(Ok(s)) => speedups.push(s),
            Ok(Err(e)) => eprintln!("!! {}: {e} (excluded from geomean)", w.name),
            Err(tf) => eprintln!(
                "!! {}: panic: {} (excluded from geomean)",
                w.name, tf.message
            ),
        }
    }
    geomean(&speedups)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Paper;
    let mut jobs = default_jobs();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match parse_jobs(args.get(i).map(String::as_str)) {
                    Ok(n) => n,
                    Err(msg) => {
                        eprintln!("ablation: {msg}");
                        std::process::exit(2);
                    }
                };
            }
            _ => usage(),
        }
        i += 1;
    }
    let workloads = headline(scale);
    let base = PipelineConfig::default();
    let cache = RunCache::new();

    println!("== Ablation: SSST threshold (paper: 0.70) ==");
    for t in [0.5, 0.6, 0.7, 0.8, 0.9, 0.99] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                thresholds: ClassifyThresholds {
                    ssst_threshold: t,
                    ..base.prefetch.thresholds
                },
                ..base.prefetch
            },
            ..base
        };
        println!(
            "  SSST_threshold {t:<5}: geomean speedup {:.3}",
            suite_speedup(&cache, &workloads, &config, jobs)
        );
    }

    println!("\n== Ablation: max prefetch distance C (paper: 8) ==");
    for c in [1, 2, 4, 8, 16, 32] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                max_prefetch_distance: c,
                ..base.prefetch
            },
            ..base
        };
        println!(
            "  C = {c:<3}: geomean speedup {:.3}",
            suite_speedup(&cache, &workloads, &config, jobs)
        );
    }

    println!("\n== Ablation: trip-count threshold TT (paper: 128) ==");
    for tt in [16, 64, 128, 512, 2048] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                thresholds: ClassifyThresholds {
                    trip_count_threshold: tt,
                    ..base.prefetch.thresholds
                },
                ..base.prefetch
            },
            ..base
        };
        println!(
            "  TT = {tt:<5}: geomean speedup {:.3}",
            suite_speedup(&cache, &workloads, &config, jobs)
        );
    }

    println!("\n== Ablation: WSST prefetching (paper: disabled) ==");
    for enabled in [false, true] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                enable_wsst_prefetch: enabled,
                ..base.prefetch
            },
            ..base
        };
        println!(
            "  WSST prefetch {}: geomean speedup {:.3}",
            if enabled { "on " } else { "off" },
            suite_speedup(&cache, &workloads, &config, jobs)
        );
    }

    println!("\n== Ablation: dependent-load prefetching (§6 future work #2) ==");
    for enabled in [false, true] {
        let config = PipelineConfig {
            prefetch: PrefetchConfig {
                enable_dependent_prefetch: enabled,
                ..base.prefetch
            },
            ..base
        };
        // perlbmk is the interesting case: its churned op chain defeats
        // stride prefetching but not dependence-based prefetching.
        let perl = workload_by_name("perlbmk", scale).unwrap();
        let perl_speedup = match cache.speedup(
            &perl.module,
            &perl.train_args,
            &perl.ref_args,
            ProfilingVariant::EdgeCheck,
            &config,
        ) {
            Ok(s) => format!("{:.3}", s.speedup),
            Err(e) => {
                eprintln!("!! perlbmk: {e}");
                "failed".to_string()
            }
        };
        println!(
            "  dependent prefetch {}: headline geomean {:.3}, perlbmk {}",
            if enabled { "on " } else { "off" },
            suite_speedup(&cache, &workloads, &config, jobs),
            perl_speedup
        );
    }

    println!("\n== Ablation: profiling variant overhead vs. speedup ==");
    for variant in [
        ProfilingVariant::EdgeCheck,
        ProfilingVariant::SampleEdgeCheck,
        ProfilingVariant::NaiveLoop,
        ProfilingVariant::SampleNaiveLoop,
        ProfilingVariant::NaiveAll,
        ProfilingVariant::SampleNaiveAll,
        ProfilingVariant::BlockCheck,
        ProfilingVariant::TwoPass,
    ] {
        let results = parallel_map_isolated(&workloads, jobs, |_, w| {
            let s = cache.speedup(&w.module, &w.train_args, &w.ref_args, variant, &base)?;
            let o = cache.overhead(&w.module, &w.train_args, variant, &base)?;
            Ok::<_, stride_core::PipelineError>((s.speedup, o.overhead))
        });
        let mut speedups = Vec::new();
        let mut overheads = Vec::new();
        for (w, r) in workloads.iter().zip(results) {
            match r {
                Ok(Ok((s, o))) => {
                    speedups.push(s);
                    overheads.push(o);
                }
                Ok(Err(e)) => eprintln!("!! {} ({variant}): {e} (excluded)", w.name),
                Err(tf) => eprintln!(
                    "!! {} ({variant}): panic: {} (excluded)",
                    w.name, tf.message
                ),
            }
        }
        println!(
            "  {variant:<20} geomean speedup {:.3}, mean overhead {:>6.1}%",
            geomean(&speedups),
            overheads.iter().sum::<f64>() / overheads.len().max(1) as f64 * 100.0
        );
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ablation [--scale test|paper] [--jobs N]\n\
         \n\
         \x20 --scale test|paper workload scale (default: paper)\n\
         \x20 --jobs N           worker threads (default: available parallelism; must be >= 1)"
    );
    std::process::exit(2);
}
