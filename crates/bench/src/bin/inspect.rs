//! Developer tool: inspect a benchmark's IR, its collected profiles, or
//! its feedback classification.
//!
//! ```text
//! inspect ir <benchmark>                    print the module's textual IR
//! inspect profile <benchmark> [variant]     run train profiling, dump profiles
//! inspect classify <benchmark> [variant]    print the Fig. 5 classification
//! ```
//!
//! `benchmark` is a Fig. 15 name (`181.mcf` or just `mcf`); `variant`
//! defaults to `edge-check`.

use stride_core::{prefetch_with_profiles, run_profiling, PipelineConfig, ProfilingVariant};
use stride_profiling::{edge_profile_to_text, stride_profile_to_text};
use stride_workloads::{workload_by_name, Scale, Workload};

fn usage() -> ! {
    eprintln!("usage: inspect <ir|profile|classify> <benchmark> [variant]");
    std::process::exit(2);
}

fn variant_arg(args: &[String]) -> ProfilingVariant {
    let name = args.get(3).map(String::as_str).unwrap_or("edge-check");
    for v in [
        ProfilingVariant::EdgeCheck,
        ProfilingVariant::NaiveLoop,
        ProfilingVariant::NaiveAll,
        ProfilingVariant::SampleEdgeCheck,
        ProfilingVariant::SampleNaiveLoop,
        ProfilingVariant::SampleNaiveAll,
        ProfilingVariant::BlockCheck,
        ProfilingVariant::SampleBlockCheck,
        ProfilingVariant::TwoPass,
    ] {
        if v.to_string() == name {
            return v;
        }
    }
    eprintln!("unknown variant `{name}`");
    std::process::exit(2);
}

fn workload_arg(args: &[String]) -> Workload {
    let Some(name) = args.get(2) else { usage() };
    match workload_by_name(name, Scale::Paper) {
        Some(w) => w,
        None => {
            eprintln!("unknown benchmark `{name}` (use a Fig. 15 name, e.g. 181.mcf)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("ir") => {
            let w = workload_arg(&args);
            print!("{}", stride_ir::module_to_string(&w.module));
        }
        Some("profile") => {
            let w = workload_arg(&args);
            let variant = variant_arg(&args);
            let config = PipelineConfig::default();
            let outcome =
                run_profiling(&w.module, &w.train_args, variant, &config).expect("profiling run");
            println!(
                "# {} under {variant}: {} cycles ({} in the profiling runtime), \
                 {} strideProf calls / {} processed / {} LFU inserts",
                w.name,
                outcome.run.cycles,
                outcome.run.profiling_cycles,
                outcome.stats.calls,
                outcome.stats.processed,
                outcome.stats.lfu_inserts,
            );
            print!("{}", edge_profile_to_text(&outcome.edge, &w.module));
            print!("{}", stride_profile_to_text(&outcome.stride));
        }
        Some("classify") => {
            let w = workload_arg(&args);
            let variant = variant_arg(&args);
            let config = PipelineConfig::default();
            let outcome =
                run_profiling(&w.module, &w.train_args, variant, &config).expect("profiling run");
            let (_, classification, report) = prefetch_with_profiles(
                &w.module,
                &outcome.edge,
                outcome.source,
                &outcome.stride,
                &config,
            );
            println!(
                "{}: {} profiled, {} classified ({} low-freq, {} low-trip, {} no-pattern)",
                w.name,
                outcome.stride.len(),
                classification.loads.len(),
                classification.filtered_low_freq,
                classification.filtered_low_trip,
                classification.no_pattern,
            );
            for l in &classification.loads {
                println!(
                    "  {} {} {:<4} stride {:>6}B  trip {:>9.0}  freq {:>9}  cover {}",
                    l.func,
                    l.site,
                    l.class.to_string(),
                    l.dominant_stride,
                    l.trip_count,
                    l.freq,
                    l.cover.len(),
                );
            }
            println!("{report:?}");
        }
        _ => usage(),
    }
}
