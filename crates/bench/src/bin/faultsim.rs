//! Seeded fault-injection campaign against the reproduction pipeline.
//!
//! ```text
//! faultsim [--scale test|paper] [--jobs N] [--seed N] [--plan SPEC]
//! faultsim --service [--jobs N] [--seed N]
//! ```
//!
//! Runs every scenario of a fault campaign (the built-in 14-scenario
//! campaign by default, or a single `--plan` spec) against its workload,
//! with each scenario panic-isolated, and checks the degradation
//! invariant for each: under injected profile loss the classifier may
//! only move loads *out of* SSST/PMST/WSST toward no-prefetch — the
//! faulted prefetch set must be a subset of the clean one. The campaign
//! report is byte-identical at every `--jobs` level and for every rerun
//! of the same seed.
//!
//! `--service` switches to the crash-recovery campaign: each scenario
//! boots a real `strided` daemon on its own database directory, streams
//! profile merges at it, SIGKILLs the process mid-merge at a seeded
//! point, restarts it, and holds recovery to two invariants — no
//! acknowledged merge is ever lost, and once the interrupted merges are
//! resent the database is byte-identical to an uninterrupted run. Some
//! scenarios additionally run the first daemon with injected wire faults
//! (truncated and reset response frames) so the client's retry and
//! request-id dedup paths are exercised under crash pressure.
//!
//! Exit status: 0 when every scenario either completed with the
//! invariant held or degraded to a structured diagnostic; 1 when any
//! scenario panicked or violated the invariant.

use stride_bench::{default_jobs, parallel_map_isolated, parse_jobs, RunCache};
use stride_core::{
    degradation_violations, run_profiling, FaultInjector, FaultPlan, PipelineConfig,
    ProfilingVariant,
};
use stride_ir::module_to_string;
use stride_profdb::{module_hash, ProfileEntry};
use stride_server::{Client, ErrorKind, Request, Response, RetryPolicy};
use stride_workloads::{workload_by_name, Scale, Workload};

/// The built-in campaign: every fault kind at least once, single and
/// compound, spread over the three headline benchmarks.
const CAMPAIGN: &[(&str, &str)] = &[
    ("truncate=0", "mcf"),
    ("truncate=1", "gap"),
    ("truncate=2", "parser"),
    ("drop-sites=1", "mcf"),
    ("drop-sites=2", "gap"),
    ("corrupt=1", "parser"),
    ("drop-updates=90", "mcf"),
    ("clamp-freq=64", "gap"),
    ("clamp-stride=10", "parser"),
    ("fuel=20000", "mcf"),
    ("addr-limit=4096", "gap"),
    ("malformed-ir", "parser"),
    ("stale-profile", "mcf"),
    ("truncate=1;drop-updates=50;clamp-freq=1000", "gap"),
];

/// One scenario's deterministic report line(s).
struct ScenarioReport {
    line: String,
    violations: usize,
}

fn run_scenario(
    cache: &RunCache,
    workload: &Workload,
    config: &PipelineConfig,
    seed: u64,
    spec: &str,
) -> Result<ScenarioReport, String> {
    let plan = FaultPlan::parse(&format!("seed={seed};{spec}")).map_err(|e| e.to_string())?;
    let injector = FaultInjector::new(plan);
    let variant = ProfilingVariant::EdgeCheck;
    let clean = cache
        .speedup(
            &workload.module,
            &workload.train_args,
            &workload.ref_args,
            variant,
            config,
        )
        .map_err(|e| format!("clean pipeline failed: {e}"))?;
    match cache.speedup_faulted(
        &workload.module,
        workload.name,
        &workload.train_args,
        &workload.ref_args,
        variant,
        config,
        &injector,
    ) {
        Ok(faulted) => {
            let violations = degradation_violations(&clean.classification, &faulted.classification);
            let verdict = if violations.is_empty() {
                "invariant held".to_string()
            } else {
                format!("INVARIANT VIOLATED: {}", violations.join("; "))
            };
            Ok(ScenarioReport {
                line: format!(
                    "ok: prefetch sites {} -> {}, speedup {:.3} -> {:.3}, {}",
                    clean.classification.loads.len(),
                    faulted.classification.loads.len(),
                    clean.speedup,
                    faulted.speedup,
                    verdict
                ),
                violations: violations.len(),
            })
        }
        Err(e) => {
            // The pipeline degraded to a structured error: no prefetch set
            // at all, so the invariant holds trivially. Indent multi-line
            // diagnostics (the malformed-ir renderer shows the offending
            // source line with a caret).
            let detail = e.to_string().replace('\n', "\n        ");
            Ok(ScenarioReport {
                line: format!("degraded: {detail}"),
                violations: 0,
            })
        }
    }
}

/// splitmix64 finalizer: the campaign's only randomness primitive.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One kill/restart scenario of the `--service` campaign.
struct ServiceScenario {
    index: usize,
    /// Merges acknowledged before the SIGKILL.
    kill_after: usize,
    /// Total merges the uninterrupted run would apply.
    total: usize,
    /// Per-scenario salt folded into the seed for the kill delay.
    salt: u64,
    /// Optional fault plan for the first (killed) daemon instance.
    inject: Option<&'static str>,
}

/// The built-in crash-recovery campaign: every kill point from "before
/// the first ack" to "after the last", twice over with different kill
/// timing, plus two runs where the killed daemon also corrupts its own
/// response frames.
fn service_campaign() -> Vec<ServiceScenario> {
    let mut scenarios: Vec<ServiceScenario> = (0..12)
        .map(|i| ServiceScenario {
            index: i,
            kill_after: i % 6,
            total: 6,
            salt: (i / 6) as u64 + 1,
            inject: None,
        })
        .collect();
    scenarios.push(ServiceScenario {
        index: 12,
        kill_after: 2,
        total: 6,
        salt: 3,
        inject: Some("net-trunc=2"),
    });
    scenarios.push(ServiceScenario {
        index: 13,
        kill_after: 3,
        total: 6,
        salt: 4,
        inject: Some("net-reset=4"),
    });
    scenarios
}

/// Locates the `strided` binary: `$STRIDED_BIN`, else a sibling of this
/// executable (both are workspace bins, so cargo puts them side by side).
fn strided_bin() -> Result<std::path::PathBuf, String> {
    if let Ok(p) = std::env::var("STRIDED_BIN") {
        return Ok(std::path::PathBuf::from(p));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("executable has no parent directory")?;
    let cand = dir.join("strided");
    if cand.exists() {
        Ok(cand)
    } else {
        Err(format!(
            "strided binary not found at {} (set STRIDED_BIN)",
            cand.display()
        ))
    }
}

/// A spawned `strided` child plus its stdout line stream.
struct Daemon {
    child: std::process::Child,
    addr: String,
}

impl Daemon {
    /// SIGKILL (not a shutdown request): the crash under test.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Asks for a graceful shutdown and reaps the child, killing it if
    /// it does not exit within ten seconds.
    fn shutdown(&mut self) {
        if let Ok(mut c) = Client::connect_with(self.addr.as_str(), RetryPolicy::no_retries()) {
            let _ = c.call(&Request::Shutdown);
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                _ => {
                    self.kill();
                    return;
                }
            }
        }
    }
}

/// Spawns `strided serve` on an ephemeral port and waits for its
/// `listening on ADDR` line.
fn spawn_daemon(
    bin: &std::path::Path,
    db: &std::path::Path,
    inject: Option<&str>,
) -> Result<Daemon, String> {
    let mut cmd = std::process::Command::new(bin);
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--db")
        .arg(db)
        .arg("--workers")
        .arg("2")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    if let Some(spec) = inject {
        cmd.arg("--inject").arg(spec);
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawn strided: {e}"))?;
    let stdout = child.stdout.take().ok_or("strided stdout not captured")?;
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        use std::io::BufRead;
        for line in std::io::BufReader::new(stdout)
            .lines()
            .map_while(Result::ok)
        {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            let _ = child.kill();
            let _ = child.wait();
            return Err("strided did not report `listening on` within 10s".to_string());
        }
        match rx.recv_timeout(remaining) {
            Ok(line) => {
                if let Some(addr) = line.strip_prefix("listening on ") {
                    return Ok(Daemon {
                        child,
                        addr: addr.to_string(),
                    });
                }
            }
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err("strided exited before binding its socket".to_string());
            }
        }
    }
}

/// The i-th merge payload: the measured base entry, renamed to the
/// scenario's workload and with every edge counter scaled by a seeded
/// factor so each merge is distinguishable in the accumulated state.
fn scenario_entry(base: &ProfileEntry, workload: &str, i: usize) -> ProfileEntry {
    let mut e = base.clone();
    e.workload = workload.to_string();
    e.runs = 1;
    let factor = 1 + (i as u64 % 3);
    for table in &mut e.edge_tables {
        for v in table.iter_mut() {
            *v = v.saturating_mul(factor);
        }
    }
    e
}

/// What the database must hold after the first `j` merges, byte for
/// byte (`None` = no entry file yet).
fn mirror_text(entries: &[ProfileEntry], j: usize) -> Result<Option<String>, String> {
    let Some(first) = entries.get(..j).and_then(<[ProfileEntry]>::first) else {
        return Ok(None);
    };
    let mut acc = first.clone();
    for e in &entries[1..j] {
        acc.merge(e).map_err(|err| format!("mirror merge: {err}"))?;
    }
    Ok(Some(acc.to_text()))
}

fn merge_ok(client: &mut Client, text: &str, what: &str) -> Result<(), String> {
    match client.call(&Request::MergeProfile {
        entry_text: text.to_string(),
    }) {
        Ok(Response::Ok(_)) => Ok(()),
        Ok(Response::Err { kind, message, .. }) => {
            Err(format!("{what} rejected [{kind}]: {message}"))
        }
        Err(e) => Err(format!("{what} transport failed: {e}")),
    }
}

/// Runs one kill/restart scenario; returns its deterministic verdict
/// line (no ports, timings, or replay counts — those vary run to run).
fn run_service_scenario(
    bin: &std::path::Path,
    base: &ProfileEntry,
    module_text: &str,
    sc: &ServiceScenario,
    seed: u64,
) -> Result<String, String> {
    let workload = format!("chaos{}", sc.index);
    let db = std::env::temp_dir().join(format!(
        "faultsim-service-{}-{}",
        std::process::id(),
        sc.index
    ));
    let _ = std::fs::remove_dir_all(&db);

    let entries: Vec<ProfileEntry> = (0..sc.total)
        .map(|i| scenario_entry(base, &workload, i))
        .collect();
    let texts: Vec<String> = entries.iter().map(ProfileEntry::to_text).collect();

    // Phase 1: stream merges, then SIGKILL with one merge in flight.
    let mut daemon = spawn_daemon(bin, &db, sc.inject)?;
    let mut client = Client::connect(daemon.addr.as_str())
        .map_err(|e| format!("connect to killed-phase daemon: {e}"))?;
    for (i, text) in texts.iter().enumerate().take(sc.kill_after) {
        merge_ok(&mut client, text, &format!("merge {i}"))?;
    }
    let mut inflight_acked = false;
    if sc.kill_after < sc.total {
        let addr = daemon.addr.clone();
        let text = texts[sc.kill_after].clone();
        let inflight = std::thread::spawn(move || {
            let Ok(mut c) = Client::connect_with(addr.as_str(), RetryPolicy::no_retries()) else {
                return false;
            };
            matches!(
                c.call(&Request::MergeProfile { entry_text: text }),
                Ok(Response::Ok(_))
            )
        });
        let delay_us = mix64(seed ^ sc.salt.wrapping_mul(0x5bd1) ^ sc.index as u64) % 2_500;
        std::thread::sleep(std::time::Duration::from_micros(delay_us));
        daemon.kill();
        inflight_acked = inflight.join().unwrap_or(false);
    } else {
        daemon.kill();
    }
    let acked = sc.kill_after + usize::from(inflight_acked);

    // Phase 2: restart on the same directory; startup recovery runs
    // before the socket binds, so a successful connect means recovery
    // completed without panicking.
    let mut daemon = spawn_daemon(bin, &db, None)?;
    let mut client = Client::connect(daemon.addr.as_str())
        .map_err(|e| format!("connect to recovered daemon: {e}"))?;
    // The module registry is in-memory, so re-register the module to
    // read the recovered entry back.
    match client.call(&Request::SubmitModule {
        workload: workload.clone(),
        text: module_text.to_string(),
    }) {
        Ok(Response::Ok(_)) => {}
        other => {
            daemon.shutdown();
            return Err(format!("re-submit after restart failed: {other:?}"));
        }
    }
    let recovered: Option<String> = match client.call(&Request::GetProfile {
        workload: workload.clone(),
    }) {
        Ok(Response::Ok(text)) => Some(text),
        Ok(Response::Err {
            kind: ErrorKind::NotFound,
            ..
        }) => None,
        other => {
            daemon.shutdown();
            return Err(format!("get-profile after restart failed: {other:?}"));
        }
    };

    // Invariant 1 — no acknowledged merge is lost: the recovered state
    // must be exactly the first-j-merges state for j = acked, or
    // j = acked + 1 when the unacknowledged in-flight merge committed
    // just before the kill. Checked BEFORE resending anything, so a
    // resend cannot mask a lost ack.
    let mut matched_j = None;
    for j in [acked, acked + 1] {
        if j == acked + 1 && (inflight_acked || sc.kill_after >= sc.total) {
            continue;
        }
        if recovered == mirror_text(&entries, j)? {
            matched_j = Some(j);
            break;
        }
    }
    let Some(applied) = matched_j else {
        daemon.shutdown();
        return Err(format!(
            "ACKED MERGE LOST OR STATE MIXED: {acked} merge(s) acknowledged, \
             recovered entry is {}",
            match &recovered {
                Some(text) => format!("{} byte(s), matching no merge prefix", text.len()),
                None => "missing".to_string(),
            }
        ));
    };

    // Phase 3: resend everything the crash swallowed and require byte
    // identity with the uninterrupted run.
    for (i, text) in texts.iter().enumerate().skip(applied) {
        merge_ok(&mut client, text, &format!("resent merge {i}"))?;
    }
    let final_text = match client.call(&Request::GetProfile { workload }) {
        Ok(Response::Ok(text)) => text,
        other => {
            daemon.shutdown();
            return Err(format!("final get-profile failed: {other:?}"));
        }
    };
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&db);
    if Some(final_text) != mirror_text(&entries, sc.total)? {
        return Err(
            "RECOVERED RUN DIVERGED: completed database differs from uninterrupted run".to_string(),
        );
    }
    Ok("ok: no acked merge lost, recovered db byte-identical to uninterrupted run".to_string())
}

/// The `--service` campaign driver; returns the process exit code.
fn service_main(jobs: usize, seed: u64) -> i32 {
    let bin = match strided_bin() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("faultsim: {e}");
            return 2;
        }
    };
    // One real profiling run supplies the base entry every scenario
    // merges; measured once so scenarios only exercise the service.
    let w = match workload_by_name("mcf", Scale::Test) {
        Some(w) => w,
        None => {
            eprintln!("faultsim: built-in workload mcf missing");
            return 2;
        }
    };
    let config = PipelineConfig::default();
    let out = match run_profiling(
        &w.module,
        &w.train_args,
        ProfilingVariant::EdgeCheck,
        &config,
    ) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("faultsim: base profiling run failed: {e}");
            return 2;
        }
    };
    let base = ProfileEntry::from_run("base", module_hash(&w.module), &out.edge, &out.stride);
    let module_text = module_to_string(&w.module);

    let scenarios = service_campaign();
    println!(
        "== service crash-recovery campaign: seed {seed}, {} scenario(s) ==",
        scenarios.len()
    );
    let results = parallel_map_isolated(&scenarios, jobs, |_, sc| {
        run_service_scenario(&bin, &base, &module_text, sc, seed)
    });

    let mut panics = 0usize;
    let mut violations = 0usize;
    for (sc, result) in scenarios.iter().zip(results) {
        let label = format!(
            "kill-after={}{}",
            sc.kill_after,
            sc.inject.map(|i| format!("+{i}")).unwrap_or_default()
        );
        match result {
            Ok(Ok(line)) => println!("  #{:<3} {label:<28} {line}", sc.index),
            Ok(Err(msg)) => {
                violations += 1;
                println!("  #{:<3} {label:<28} FAILED: {msg}", sc.index);
            }
            Err(tf) => {
                panics += 1;
                println!("  #{:<3} {label:<28} PANIC: {}", sc.index, tf.message);
            }
        }
    }
    println!(
        "campaign: {} scenario(s), {} panic(s), {} invariant violation(s)",
        scenarios.len(),
        panics,
        violations
    );
    i32::from(panics > 0 || violations > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Test;
    let mut jobs = default_jobs();
    let mut seed = 42u64;
    let mut service = false;
    let mut single_plan: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match parse_jobs(args.get(i).map(String::as_str)) {
                    Ok(n) => n,
                    Err(msg) => {
                        eprintln!("faultsim: {msg}");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--plan" => {
                i += 1;
                single_plan = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--service" => service = true,
            _ => usage(),
        }
        i += 1;
    }

    if service {
        std::process::exit(service_main(jobs, seed));
    }

    let config = PipelineConfig::default();
    let cache = RunCache::new();
    let scenarios: Vec<(String, &str)> = match &single_plan {
        Some(spec) => vec![(spec.clone(), "mcf")],
        None => CAMPAIGN
            .iter()
            .map(|&(spec, w)| (spec.to_string(), w))
            .collect(),
    };
    println!(
        "== fault campaign: seed {seed}, {} scenario(s), scale {} ==",
        scenarios.len(),
        match scale {
            Scale::Test => "test",
            Scale::Paper => "paper",
        }
    );

    let results = parallel_map_isolated(&scenarios, jobs, |_, (spec, wname)| {
        let workload = workload_by_name(wname, scale)
            .unwrap_or_else(|| panic!("unknown campaign workload {wname}"));
        run_scenario(&cache, &workload, &config, seed, spec)
    });

    let mut panics = 0usize;
    let mut violations = 0usize;
    let mut degraded = 0usize;
    for ((spec, wname), result) in scenarios.iter().zip(results) {
        let label = format!("{spec}@{wname}");
        match result {
            Ok(Ok(report)) => {
                if report.line.starts_with("degraded:") {
                    degraded += 1;
                }
                violations += report.violations;
                println!("  {label:<46} {}", report.line);
            }
            Ok(Err(msg)) => {
                degraded += 1;
                println!("  {label:<46} unusable: {msg}");
            }
            Err(tf) => {
                panics += 1;
                println!("  {label:<46} PANIC: {}", tf.message);
            }
        }
    }
    println!(
        "campaign: {} scenario(s), {} degraded to diagnostics, {} panic(s), {} invariant violation(s)",
        scenarios.len(),
        degraded,
        panics,
        violations
    );
    if panics > 0 || violations > 0 {
        std::process::exit(1);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: faultsim [--scale test|paper] [--jobs N] [--seed N] [--plan SPEC]\n\
         \x20      faultsim --service [--jobs N] [--seed N]\n\
         \n\
         \x20 --scale test|paper workload scale (default: test)\n\
         \x20 --jobs N           worker threads (default: available parallelism)\n\
         \x20 --seed N           campaign seed (default: 42)\n\
         \x20 --plan SPEC        run one fault plan instead of the built-in campaign,\n\
         \x20                    e.g. 'truncate=2;fuel=20000' (see repro --inject)\n\
         \x20 --service          crash-recovery campaign: SIGKILL and restart a real\n\
         \x20                    strided daemon mid-merge; no acked merge may be lost"
    );
    std::process::exit(2);
}
