//! Seeded fault-injection campaign against the reproduction pipeline.
//!
//! ```text
//! faultsim [--scale test|paper] [--jobs N] [--seed N] [--plan SPEC]
//! faultsim --service [--jobs N] [--seed N]
//! faultsim --cluster [--jobs N] [--seed N]
//! ```
//!
//! Runs every scenario of a fault campaign (the built-in 14-scenario
//! campaign by default, or a single `--plan` spec) against its workload,
//! with each scenario panic-isolated, and checks the degradation
//! invariant for each: under injected profile loss the classifier may
//! only move loads *out of* SSST/PMST/WSST toward no-prefetch — the
//! faulted prefetch set must be a subset of the clean one. The campaign
//! report is byte-identical at every `--jobs` level and for every rerun
//! of the same seed.
//!
//! `--service` switches to the crash-recovery campaign: each scenario
//! boots a real `strided` daemon on its own database directory, streams
//! profile merges at it, SIGKILLs the process mid-merge at a seeded
//! point, restarts it, and holds recovery to two invariants — no
//! acknowledged merge is ever lost, and once the interrupted merges are
//! resent the database is byte-identical to an uninterrupted run. Some
//! scenarios additionally run the first daemon with injected wire faults
//! (truncated and reset response frames) so the client's retry and
//! request-id dedup paths are exercised under crash pressure.
//!
//! `--cluster` escalates to the sharded-service chaos campaign: each
//! scenario boots a real `strided-router` over 3 shards × 2 replica
//! `strided` daemons, drives seeded merge traffic through the router,
//! SIGKILLs a seeded victim (one replica or a whole shard) mid-traffic,
//! and plays adversarial replication weather — delta batches dropped,
//! duplicated, and reordered straight at the replicas. Invariants: a
//! fully dead shard sheds only its own key range with a typed
//! `unavailable shard=K` error while every other range keeps serving;
//! after restart + `route-update` the replication lag drains; and every
//! replica store ends byte-identical to an uninterrupted single-store
//! reference applying the same deltas — so no acknowledged merge can be
//! lost and no duplicate can double-count. Merges carry power-of-two
//! edge-counter scaling, so any lost or double-applied delta produces a
//! unique byte difference.
//!
//! Four of the cluster scenarios exercise the self-healing loop with
//! **zero operator verbs**: a killed replica restarted with
//! `--announce` re-registers itself and is revived by the router's
//! probe clock (hints drained, modules re-taught, repair run);
//! divergent deltas injected behind the router's back are reconverged
//! by traffic-driven anti-entropy rounds alone; a `--hint-cap 2`
//! router overflows its spool under a replica outage and must refuse
//! the overflow whole with typed `handoff-full` until self-announce
//! revival drains it; and 8 concurrent writers push ~2x the AIMD
//! admission floor, where every shed must be a typed `busy` with a
//! retry hint and every acked merge must survive byte-identically.
//!
//! Exit status: 0 when every scenario either completed with the
//! invariant held or degraded to a structured diagnostic; 1 when any
//! scenario panicked or violated the invariant.

use stride_bench::{default_jobs, parallel_map_isolated, parse_jobs, RunCache};
use stride_core::{
    degradation_violations, run_profiling, FaultInjector, FaultPlan, PipelineConfig,
    ProfilingVariant,
};
use stride_ir::module_to_string;
use stride_profdb::{
    encode_delta_batch, module_hash, DeltaRecord, ProfileDb, ProfileEntry, ShardMap,
};
use stride_server::{Client, ErrorKind, Request, Response, RetryPolicy};
use stride_workloads::{workload_by_name, Scale, Workload};

/// The built-in campaign: every fault kind at least once, single and
/// compound, spread over the three headline benchmarks.
const CAMPAIGN: &[(&str, &str)] = &[
    ("truncate=0", "mcf"),
    ("truncate=1", "gap"),
    ("truncate=2", "parser"),
    ("drop-sites=1", "mcf"),
    ("drop-sites=2", "gap"),
    ("corrupt=1", "parser"),
    ("drop-updates=90", "mcf"),
    ("clamp-freq=64", "gap"),
    ("clamp-stride=10", "parser"),
    ("fuel=20000", "mcf"),
    ("addr-limit=4096", "gap"),
    ("malformed-ir", "parser"),
    ("stale-profile", "mcf"),
    ("truncate=1;drop-updates=50;clamp-freq=1000", "gap"),
];

/// One scenario's deterministic report line(s).
struct ScenarioReport {
    line: String,
    violations: usize,
}

fn run_scenario(
    cache: &RunCache,
    workload: &Workload,
    config: &PipelineConfig,
    seed: u64,
    spec: &str,
) -> Result<ScenarioReport, String> {
    let plan = FaultPlan::parse(&format!("seed={seed};{spec}")).map_err(|e| e.to_string())?;
    let injector = FaultInjector::new(plan);
    let variant = ProfilingVariant::EdgeCheck;
    let clean = cache
        .speedup(
            &workload.module,
            &workload.train_args,
            &workload.ref_args,
            variant,
            config,
        )
        .map_err(|e| format!("clean pipeline failed: {e}"))?;
    match cache.speedup_faulted(
        &workload.module,
        workload.name,
        &workload.train_args,
        &workload.ref_args,
        variant,
        config,
        &injector,
    ) {
        Ok(faulted) => {
            let violations = degradation_violations(&clean.classification, &faulted.classification);
            let verdict = if violations.is_empty() {
                "invariant held".to_string()
            } else {
                format!("INVARIANT VIOLATED: {}", violations.join("; "))
            };
            Ok(ScenarioReport {
                line: format!(
                    "ok: prefetch sites {} -> {}, speedup {:.3} -> {:.3}, {}",
                    clean.classification.loads.len(),
                    faulted.classification.loads.len(),
                    clean.speedup,
                    faulted.speedup,
                    verdict
                ),
                violations: violations.len(),
            })
        }
        Err(e) => {
            // The pipeline degraded to a structured error: no prefetch set
            // at all, so the invariant holds trivially. Indent multi-line
            // diagnostics (the malformed-ir renderer shows the offending
            // source line with a caret).
            let detail = e.to_string().replace('\n', "\n        ");
            Ok(ScenarioReport {
                line: format!("degraded: {detail}"),
                violations: 0,
            })
        }
    }
}

/// splitmix64 stream increment.
const MIX_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64 finalizer without the increment — the same mix the
/// client's idempotency-id stream uses, so the cluster campaign can
/// predict the req-id the router stamps on each merge's delta.
fn mix_final(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// splitmix64 step: the campaign's only randomness primitive.
fn mix64(x: u64) -> u64 {
    mix_final(x.wrapping_add(MIX_GAMMA))
}

/// The client's idempotency-id stream from `set_id_state(state)`: the
/// req-ids its next `n` merge calls will carry.
fn id_stream(mut state: u64, n: usize) -> Vec<u64> {
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        state = state.wrapping_add(MIX_GAMMA);
        let id = mix_final(state);
        if id != 0 {
            ids.push(id);
        }
    }
    ids
}

/// Seeded shuffle/sample source for the chaos schedules.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(MIX_GAMMA);
        mix_final(self.0)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }
}

/// One kill/restart scenario of the `--service` campaign.
struct ServiceScenario {
    index: usize,
    /// Merges acknowledged before the SIGKILL.
    kill_after: usize,
    /// Total merges the uninterrupted run would apply.
    total: usize,
    /// Per-scenario salt folded into the seed for the kill delay.
    salt: u64,
    /// Optional fault plan for the first (killed) daemon instance.
    inject: Option<&'static str>,
}

/// The built-in crash-recovery campaign: every kill point from "before
/// the first ack" to "after the last", twice over with different kill
/// timing, plus two runs where the killed daemon also corrupts its own
/// response frames.
fn service_campaign() -> Vec<ServiceScenario> {
    let mut scenarios: Vec<ServiceScenario> = (0..12)
        .map(|i| ServiceScenario {
            index: i,
            kill_after: i % 6,
            total: 6,
            salt: (i / 6) as u64 + 1,
            inject: None,
        })
        .collect();
    scenarios.push(ServiceScenario {
        index: 12,
        kill_after: 2,
        total: 6,
        salt: 3,
        inject: Some("net-trunc=2"),
    });
    scenarios.push(ServiceScenario {
        index: 13,
        kill_after: 3,
        total: 6,
        salt: 4,
        inject: Some("net-reset=4"),
    });
    scenarios
}

/// Locates the `strided` binary: `$STRIDED_BIN`, else a sibling of this
/// executable (both are workspace bins, so cargo puts them side by side).
fn strided_bin() -> Result<std::path::PathBuf, String> {
    if let Ok(p) = std::env::var("STRIDED_BIN") {
        return Ok(std::path::PathBuf::from(p));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("executable has no parent directory")?;
    let cand = dir.join("strided");
    if cand.exists() {
        Ok(cand)
    } else {
        Err(format!(
            "strided binary not found at {} (set STRIDED_BIN)",
            cand.display()
        ))
    }
}

/// Locates the `strided-router` binary the same way.
fn router_bin() -> Result<std::path::PathBuf, String> {
    if let Ok(p) = std::env::var("STRIDED_ROUTER_BIN") {
        return Ok(std::path::PathBuf::from(p));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("executable has no parent directory")?;
    let cand = dir.join("strided-router");
    if cand.exists() {
        Ok(cand)
    } else {
        Err(format!(
            "strided-router binary not found at {} (set STRIDED_ROUTER_BIN)",
            cand.display()
        ))
    }
}

/// A spawned `strided` child plus its stdout line stream.
struct Daemon {
    child: std::process::Child,
    addr: String,
}

impl Daemon {
    /// SIGKILL (not a shutdown request): the crash under test.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Asks for a graceful shutdown and reaps the child, killing it if
    /// it does not exit within ten seconds.
    fn shutdown(&mut self) {
        if let Ok(mut c) = Client::connect_with(self.addr.as_str(), RetryPolicy::no_retries()) {
            let _ = c.call(&Request::Shutdown);
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                _ => {
                    self.kill();
                    return;
                }
            }
        }
    }
}

/// Spawns `strided serve` on an ephemeral port and waits for its
/// `listening on ADDR` line.
fn spawn_daemon(
    bin: &std::path::Path,
    db: &std::path::Path,
    inject: Option<&str>,
) -> Result<Daemon, String> {
    spawn_daemon_with(bin, db, inject, &[])
}

/// [`spawn_daemon`] with extra CLI flags (e.g. `--announce` for a
/// self-registering restart).
fn spawn_daemon_with(
    bin: &std::path::Path,
    db: &std::path::Path,
    inject: Option<&str>,
    extra: &[String],
) -> Result<Daemon, String> {
    let mut cmd = std::process::Command::new(bin);
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--db")
        .arg(db)
        .arg("--workers")
        .arg("2")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    if let Some(spec) = inject {
        cmd.arg("--inject").arg(spec);
    }
    cmd.args(extra);
    wait_listening(cmd, "strided")
}

/// Spawns `strided-router serve` over the given shard topology (one
/// comma-joined `--shard` flag per shard) and waits for its bind line.
/// Extra CLI flags are appended last, so a repeated flag (e.g.
/// `--workers`) overrides the base value.
fn spawn_router_with(
    bin: &std::path::Path,
    shards: &[Vec<String>],
    extra: &[String],
) -> Result<Daemon, String> {
    let mut cmd = std::process::Command::new(bin);
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg("2")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    for row in shards {
        cmd.arg("--shard").arg(row.join(","));
    }
    cmd.args(extra);
    wait_listening(cmd, "strided-router")
}

/// Spawns the command and waits for its `listening on ADDR` stdout line.
fn wait_listening(mut cmd: std::process::Command, what: &str) -> Result<Daemon, String> {
    let mut child = cmd.spawn().map_err(|e| format!("spawn {what}: {e}"))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| format!("{what} stdout not captured"))?;
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        use std::io::BufRead;
        for line in std::io::BufReader::new(stdout)
            .lines()
            .map_while(Result::ok)
        {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("{what} did not report `listening on` within 10s"));
        }
        match rx.recv_timeout(remaining) {
            Ok(line) => {
                if let Some(addr) = line.strip_prefix("listening on ") {
                    return Ok(Daemon {
                        child,
                        addr: addr.to_string(),
                    });
                }
            }
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("{what} exited before binding its socket"));
            }
        }
    }
}

/// The i-th merge payload: the measured base entry, renamed to the
/// scenario's workload and with every edge counter scaled by a seeded
/// factor so each merge is distinguishable in the accumulated state.
fn scenario_entry(base: &ProfileEntry, workload: &str, i: usize) -> ProfileEntry {
    let mut e = base.clone();
    e.workload = workload.to_string();
    e.runs = 1;
    let factor = 1 + (i as u64 % 3);
    for table in &mut e.edge_tables {
        for v in table.iter_mut() {
            *v = v.saturating_mul(factor);
        }
    }
    e
}

/// What the database must hold after the first `j` merges, byte for
/// byte (`None` = no entry file yet).
fn mirror_text(entries: &[ProfileEntry], j: usize) -> Result<Option<String>, String> {
    let Some(first) = entries.get(..j).and_then(<[ProfileEntry]>::first) else {
        return Ok(None);
    };
    let mut acc = first.clone();
    for e in &entries[1..j] {
        acc.merge(e).map_err(|err| format!("mirror merge: {err}"))?;
    }
    Ok(Some(acc.to_text()))
}

fn merge_ok(client: &mut Client, text: &str, what: &str) -> Result<(), String> {
    match client.call(&Request::MergeProfile {
        entry_text: text.to_string(),
    }) {
        Ok(Response::Ok(_)) => Ok(()),
        Ok(Response::Err { kind, message, .. }) => {
            Err(format!("{what} rejected [{kind}]: {message}"))
        }
        Err(e) => Err(format!("{what} transport failed: {e}")),
    }
}

/// Runs one kill/restart scenario; returns its deterministic verdict
/// line (no ports, timings, or replay counts — those vary run to run).
fn run_service_scenario(
    bin: &std::path::Path,
    base: &ProfileEntry,
    module_text: &str,
    sc: &ServiceScenario,
    seed: u64,
) -> Result<String, String> {
    let workload = format!("chaos{}", sc.index);
    let db = std::env::temp_dir().join(format!(
        "faultsim-service-{}-{}",
        std::process::id(),
        sc.index
    ));
    let _ = std::fs::remove_dir_all(&db);

    let entries: Vec<ProfileEntry> = (0..sc.total)
        .map(|i| scenario_entry(base, &workload, i))
        .collect();
    let texts: Vec<String> = entries.iter().map(ProfileEntry::to_text).collect();

    // Phase 1: stream merges, then SIGKILL with one merge in flight.
    let mut daemon = spawn_daemon(bin, &db, sc.inject)?;
    let mut client = Client::connect(daemon.addr.as_str())
        .map_err(|e| format!("connect to killed-phase daemon: {e}"))?;
    for (i, text) in texts.iter().enumerate().take(sc.kill_after) {
        merge_ok(&mut client, text, &format!("merge {i}"))?;
    }
    let mut inflight_acked = false;
    if sc.kill_after < sc.total {
        let addr = daemon.addr.clone();
        let text = texts[sc.kill_after].clone();
        let inflight = std::thread::spawn(move || {
            let Ok(mut c) = Client::connect_with(addr.as_str(), RetryPolicy::no_retries()) else {
                return false;
            };
            matches!(
                c.call(&Request::MergeProfile { entry_text: text }),
                Ok(Response::Ok(_))
            )
        });
        let delay_us = mix64(seed ^ sc.salt.wrapping_mul(0x5bd1) ^ sc.index as u64) % 2_500;
        std::thread::sleep(std::time::Duration::from_micros(delay_us));
        daemon.kill();
        inflight_acked = inflight.join().unwrap_or(false);
    } else {
        daemon.kill();
    }
    let acked = sc.kill_after + usize::from(inflight_acked);

    // Phase 2: restart on the same directory; startup recovery runs
    // before the socket binds, so a successful connect means recovery
    // completed without panicking.
    let mut daemon = spawn_daemon(bin, &db, None)?;
    let mut client = Client::connect(daemon.addr.as_str())
        .map_err(|e| format!("connect to recovered daemon: {e}"))?;
    // The module registry is in-memory, so re-register the module to
    // read the recovered entry back.
    match client.call(&Request::SubmitModule {
        workload: workload.clone(),
        text: module_text.to_string(),
    }) {
        Ok(Response::Ok(_)) => {}
        other => {
            daemon.shutdown();
            return Err(format!("re-submit after restart failed: {other:?}"));
        }
    }
    let recovered: Option<String> = match client.call(&Request::GetProfile {
        workload: workload.clone(),
    }) {
        Ok(Response::Ok(text)) => Some(text),
        Ok(Response::Err {
            kind: ErrorKind::NotFound,
            ..
        }) => None,
        other => {
            daemon.shutdown();
            return Err(format!("get-profile after restart failed: {other:?}"));
        }
    };

    // Invariant 1 — no acknowledged merge is lost: the recovered state
    // must be exactly the first-j-merges state for j = acked, or
    // j = acked + 1 when the unacknowledged in-flight merge committed
    // just before the kill. Checked BEFORE resending anything, so a
    // resend cannot mask a lost ack.
    let mut matched_j = None;
    for j in [acked, acked + 1] {
        if j == acked + 1 && (inflight_acked || sc.kill_after >= sc.total) {
            continue;
        }
        if recovered == mirror_text(&entries, j)? {
            matched_j = Some(j);
            break;
        }
    }
    let Some(applied) = matched_j else {
        daemon.shutdown();
        return Err(format!(
            "ACKED MERGE LOST OR STATE MIXED: {acked} merge(s) acknowledged, \
             recovered entry is {}",
            match &recovered {
                Some(text) => format!("{} byte(s), matching no merge prefix", text.len()),
                None => "missing".to_string(),
            }
        ));
    };

    // Phase 3: resend everything the crash swallowed and require byte
    // identity with the uninterrupted run.
    for (i, text) in texts.iter().enumerate().skip(applied) {
        merge_ok(&mut client, text, &format!("resent merge {i}"))?;
    }
    let final_text = match client.call(&Request::GetProfile { workload }) {
        Ok(Response::Ok(text)) => text,
        other => {
            daemon.shutdown();
            return Err(format!("final get-profile failed: {other:?}"));
        }
    };
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&db);
    if Some(final_text) != mirror_text(&entries, sc.total)? {
        return Err(
            "RECOVERED RUN DIVERGED: completed database differs from uninterrupted run".to_string(),
        );
    }
    Ok("ok: no acked merge lost, recovered db byte-identical to uninterrupted run".to_string())
}

/// The `--service` campaign driver; returns the process exit code.
fn service_main(jobs: usize, seed: u64) -> i32 {
    let bin = match strided_bin() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("faultsim: {e}");
            return 2;
        }
    };
    // One real profiling run supplies the base entry every scenario
    // merges; measured once so scenarios only exercise the service.
    let w = match workload_by_name("mcf", Scale::Test) {
        Some(w) => w,
        None => {
            eprintln!("faultsim: built-in workload mcf missing");
            return 2;
        }
    };
    let config = PipelineConfig::default();
    let out = match run_profiling(
        &w.module,
        &w.train_args,
        ProfilingVariant::EdgeCheck,
        &config,
    ) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("faultsim: base profiling run failed: {e}");
            return 2;
        }
    };
    let base = ProfileEntry::from_run("base", module_hash(&w.module), &out.edge, &out.stride);
    let module_text = module_to_string(&w.module);

    let scenarios = service_campaign();
    println!(
        "== service crash-recovery campaign: seed {seed}, {} scenario(s) ==",
        scenarios.len()
    );
    let results = parallel_map_isolated(&scenarios, jobs, |_, sc| {
        run_service_scenario(&bin, &base, &module_text, sc, seed)
    });

    let mut panics = 0usize;
    let mut violations = 0usize;
    for (sc, result) in scenarios.iter().zip(results) {
        let label = format!(
            "kill-after={}{}",
            sc.kill_after,
            sc.inject.map(|i| format!("+{i}")).unwrap_or_default()
        );
        match result {
            Ok(Ok(line)) => println!("  #{:<3} {label:<28} {line}", sc.index),
            Ok(Err(msg)) => {
                violations += 1;
                println!("  #{:<3} {label:<28} FAILED: {msg}", sc.index);
            }
            Err(tf) => {
                panics += 1;
                println!("  #{:<3} {label:<28} PANIC: {}", sc.index, tf.message);
            }
        }
    }
    println!(
        "campaign: {} scenario(s), {} panic(s), {} invariant violation(s)",
        scenarios.len(),
        panics,
        violations
    );
    i32::from(panics > 0 || violations > 0)
}

/// Cluster topology the `--cluster` campaign boots per scenario.
const CLUSTER_SHARDS: usize = 3;
const CLUSTER_REPLICAS: usize = 2;
/// Distinct `(workload, module-hash)` keys per scenario.
const CLUSTER_KEYS: usize = 8;
/// Merges per key; each round scales edge counters by `1 << round`, so
/// every applied-delta subset has a unique counter sum.
const CLUSTER_ROUNDS: usize = 4;

/// How a cluster scenario heals after its fault.
#[derive(Clone, Copy, PartialEq)]
enum Heal {
    /// Legacy flow: the driver issues an operator `route-update` after
    /// restarting the victims.
    Operator,
    /// Self-healing flow: the restarted victim is given `--announce` and
    /// registers itself with the router — zero operator verbs.
    Announce,
    /// No kill: divergent deltas are injected behind the router's back
    /// and only traffic-driven anti-entropy repair rounds reconverge.
    AntiEntropy,
    /// Tiny hint spool (`--hint-cap 2`): a replica outage overflows it,
    /// merges are refused whole with typed `handoff-full`, revival
    /// drains the spool, and resends land cleanly.
    HintPressure,
    /// 2x-capacity concurrent merge pressure against the router's AIMD
    /// admission limiter: sheds must be typed, acked merges durable.
    Overload,
}

/// One scenario of the `--cluster` chaos campaign.
struct ClusterScenario {
    index: usize,
    /// `(shard, kill both replicas?)` — `None` is the pure
    /// drop/dup/reorder weather scenario.
    kill: Option<(usize, bool)>,
    /// Per-scenario salt folded into the seed.
    salt: u64,
    /// Healing mechanism under test.
    heal: Heal,
}

/// The built-in cluster campaign: the four legacy operator-driven
/// scenarios (whole-shard outage, single-replica outage, pure
/// replication weather, second whole-shard outage), then the four
/// self-healing scenarios (announce-based unattended failover,
/// anti-entropy repair of divergent replicas, hint-spool overflow
/// pressure, and 2x-capacity AIMD overload).
fn cluster_campaign() -> Vec<ClusterScenario> {
    vec![
        ClusterScenario {
            index: 0,
            kill: Some((1, true)),
            salt: 1,
            heal: Heal::Operator,
        },
        ClusterScenario {
            index: 1,
            kill: Some((2, false)),
            salt: 2,
            heal: Heal::Operator,
        },
        ClusterScenario {
            index: 2,
            kill: None,
            salt: 3,
            heal: Heal::Operator,
        },
        ClusterScenario {
            index: 3,
            kill: Some((0, true)),
            salt: 4,
            heal: Heal::Operator,
        },
        ClusterScenario {
            index: 4,
            kill: Some((1, false)),
            salt: 5,
            heal: Heal::Announce,
        },
        ClusterScenario {
            index: 5,
            kill: None,
            salt: 6,
            heal: Heal::AntiEntropy,
        },
        ClusterScenario {
            index: 6,
            kill: None,
            salt: 7,
            heal: Heal::HintPressure,
        },
        ClusterScenario {
            index: 7,
            kill: None,
            salt: 8,
            heal: Heal::Overload,
        },
    ]
}

/// The i-th merge of a key: the base entry renamed to the key with every
/// edge counter scaled by `1 << round`.
fn cluster_entry(base: &ProfileEntry, workload: &str, hash: u64, round: usize) -> ProfileEntry {
    let mut e = base.clone();
    e.workload = workload.to_string();
    e.module_hash = hash;
    e.runs = 1;
    let factor = 1u64 << round;
    for table in &mut e.edge_tables {
        for v in table.iter_mut() {
            *v = v.saturating_mul(factor);
        }
    }
    e
}

/// Sorted `(name, bytes)` of a store's entry files — the converged state
/// a replica must share byte-for-byte with the reference.
fn entry_files(dir: &std::path::Path) -> Result<Vec<(String, Vec<u8>)>, String> {
    let mut files = Vec::new();
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for de in rd {
        let de = de.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = de.file_name().to_string_lossy().into_owned();
        if name.ends_with(".profdb") {
            let bytes =
                std::fs::read(de.path()).map_err(|e| format!("{}: {e}", de.path().display()))?;
            files.push((name, bytes));
        }
    }
    files.sort();
    Ok(files)
}

/// The scenario's processes; SIGKILLed on drop so an early error return
/// never leaks daemons.
struct Cluster {
    router: Option<Daemon>,
    backends: Vec<Vec<Option<Daemon>>>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for d in self.router.iter_mut() {
            d.kill();
        }
        for d in self.backends.iter_mut().flatten().flatten() {
            d.kill();
        }
    }
}

/// Deterministic per-scenario traffic: the keys, their owning shards,
/// every merge's wire text, and the exact delta record the router will
/// fan out for it (req-ids predicted from the client id stream — only
/// merges consume ids, so stats/health polls never shift the stream).
struct TrafficPlan {
    keys: Vec<(String, u64)>,
    owner: Vec<usize>,
    texts: Vec<String>,
    records: Vec<DeltaRecord>,
    id0: u64,
}

fn plan_traffic(
    bases: &[ProfileEntry],
    sc: &ClusterScenario,
    seed: u64,
) -> Result<TrafficPlan, String> {
    let map = ShardMap::new(CLUSTER_SHARDS as u32);
    let keys: Vec<(String, u64)> = (0..CLUSTER_KEYS)
        .map(|i| (format!("c{}k{i}", sc.index), 0x4100 + i as u64))
        .collect();
    let owner: Vec<usize> = keys
        .iter()
        .map(|(w, h)| map.shard_of(w, *h) as usize)
        .collect();
    for k in 0..CLUSTER_SHARDS {
        if !owner.contains(&k) {
            return Err(format!(
                "scenario key set covers no key on shard {k}; widen CLUSTER_KEYS"
            ));
        }
    }
    let total = CLUSTER_KEYS * CLUSTER_ROUNDS;
    let texts: Vec<String> = (0..total)
        .map(|i| {
            let key = i % CLUSTER_KEYS;
            let (w, h) = &keys[key];
            cluster_entry(&bases[key % bases.len()], w, *h, i / CLUSTER_KEYS).to_text()
        })
        .collect();
    let id0 = mix64(seed ^ sc.salt.wrapping_mul(0xc2b2_ae3d));
    let records: Vec<DeltaRecord> = id_stream(id0, total)
        .into_iter()
        .zip(&texts)
        .map(|(req_id, t)| DeltaRecord {
            req_id,
            entry_text: t.clone(),
        })
        .collect();
    Ok(TrafficPlan {
        keys,
        owner,
        texts,
        records,
        id0,
    })
}

/// Per-scenario scratch root for database directories.
fn cluster_root(index: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("faultsim-cluster-{}-{index}", std::process::id()))
}

/// Boots 3 shards × 2 replicas plus a router over them (extra router
/// flags let self-healing scenarios shrink the hint cap or widen the
/// worker pool); returns the process set and the router's address.
fn boot_cluster_3x2(
    strided: &std::path::Path,
    router: &std::path::Path,
    root: &std::path::Path,
    router_extra: &[String],
) -> Result<(Cluster, String), String> {
    let _ = std::fs::remove_dir_all(root);
    let mut cluster = Cluster {
        router: None,
        backends: Vec::new(),
    };
    let mut topology = Vec::new();
    for k in 0..CLUSTER_SHARDS {
        let mut row = Vec::new();
        let mut addrs = Vec::new();
        for r in 0..CLUSTER_REPLICAS {
            let d = spawn_daemon(strided, &root.join(format!("s{k}r{r}")), None)?;
            addrs.push(d.addr.clone());
            row.push(Some(d));
        }
        cluster.backends.push(row);
        topology.push(addrs);
    }
    cluster.router = Some(spawn_router_with(router, &topology, router_extra)?);
    let addr = match &cluster.router {
        Some(d) => d.addr.clone(),
        None => return Err("router vanished".to_string()),
    };
    Ok((cluster, addr))
}

/// Replication weather: each shard's deltas delivered straight at its
/// live replicas with seeded drops, duplicates, and a full shuffle — an
/// adversarial at-least-once network. Request-id dedup plus the
/// commutative merge must absorb all of it.
fn chaos_weather(
    cluster: &Cluster,
    owner: &[usize],
    records: &[DeltaRecord],
    seed: u64,
    salt: u64,
) -> Result<(), String> {
    let total = records.len();
    let mut rng = Rng(mix64(seed ^ 0x51ab ^ salt));
    for k in 0..CLUSTER_SHARDS {
        let owned: Vec<&DeltaRecord> = (0..total)
            .filter(|i| owner[i % CLUSTER_KEYS] == k)
            .map(|i| &records[i])
            .collect();
        for r in 0..CLUSTER_REPLICAS {
            let Some(d) = &cluster.backends[k][r] else {
                continue;
            };
            let mut sched: Vec<&DeltaRecord> = Vec::new();
            for rec in &owned {
                if rng.below(3) != 0 {
                    sched.push(rec); // dropped with probability 1/3
                }
                if rng.below(3) == 0 {
                    sched.push(rec); // duplicated with probability 1/3
                }
            }
            rng.shuffle(&mut sched);
            let mut c = Client::connect_with(d.addr.as_str(), RetryPolicy::no_retries())
                .map_err(|e| format!("chaos connect s{k}r{r}: {e}"))?;
            for chunk in sched.chunks(3) {
                let batch: Vec<DeltaRecord> = chunk.iter().map(|r| (*r).clone()).collect();
                match c.call(&Request::SyncDelta {
                    batch_text: encode_delta_batch(&batch),
                }) {
                    Ok(Response::Ok(_)) => {}
                    other => return Err(format!("chaos sync-delta to s{k}r{r}: {other:?}")),
                }
            }
        }
    }
    Ok(())
}

/// `db-entries` per `== shard K replica R ... ==` stats section.
fn replica_entry_counts(body: &str) -> Vec<((usize, usize), u64)> {
    let mut out = Vec::new();
    let mut current: Option<(usize, usize)> = None;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("== shard ") {
            let mut p = rest.split_whitespace();
            let k = p.next().and_then(|s| s.parse().ok());
            let tag = p.next();
            let r = p.next().and_then(|s| s.parse().ok());
            current = match (k, tag, r) {
                (Some(k), Some("replica"), Some(r)) => Some((k, r)),
                _ => None,
            };
            continue;
        }
        if line.starts_with("== ") {
            current = None;
            continue;
        }
        if let (Some(kr), Some(v)) = (current, line.strip_prefix("db-entries ")) {
            if let Ok(n) = v.trim().parse() {
                out.push((kr, n));
                current = None;
            }
        }
    }
    out
}

/// Polls router stats until the cluster looks self-healed: every hint
/// spool drained, every replica alive, and the replicas of each shard
/// agreeing on entry count — then keeps polling until `extra_repair`
/// more anti-entropy rounds have run on top of that quiet state. Every
/// poll ticks the router's logical probe clock, so polling *drives*
/// probing, revival, and repair; no operator verb is ever issued.
fn settle_selfhealed(client: &mut Client, extra_repair: u64) -> Result<(), String> {
    let want = CLUSTER_SHARDS * CLUSTER_REPLICAS;
    let mut quiet_rounds: Option<u64> = None;
    for _ in 0..800 {
        let body = match client.call(&Request::Stats) {
            Ok(Response::Ok(b)) => b,
            other => return Err(format!("settle stats: {other:?}")),
        };
        let lag: Vec<&str> = body.lines().filter(|l| l.starts_with("lag ")).collect();
        let lag_ok = lag.len() == want && lag.iter().all(|l| l.ends_with("queued=0"));
        let health: Vec<&str> = body.lines().filter(|l| l.starts_with("health ")).collect();
        let alive = health.len() == want && health.iter().all(|l| l.ends_with("state=alive"));
        let counts = replica_entry_counts(&body);
        let agree = counts.len() == want
            && (0..CLUSTER_SHARDS).all(|k| {
                let per: Vec<u64> = counts
                    .iter()
                    .filter(|((ck, _), _)| *ck == k)
                    .map(|(_, n)| *n)
                    .collect();
                per.len() == CLUSTER_REPLICAS && per.windows(2).all(|w| w[0] == w[1])
            });
        let rounds = body
            .lines()
            .find_map(|l| l.strip_prefix("counter router.repair_rounds "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        if lag_ok && alive && agree {
            let base = *quiet_rounds.get_or_insert(rounds);
            if rounds >= base + extra_repair {
                return Ok(());
            }
        } else {
            quiet_rounds = None;
        }
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    Err("cluster did not self-heal within the settle budget".to_string())
}

/// Stops the whole cluster (router shutdown fans out), then holds every
/// replica store byte-identical to an uninterrupted reference applying
/// `reference[k]` once per shard. `allow_empty` permits a shard that
/// legitimately ended with no applied merges (overload shedding).
fn stop_and_compare(
    client: &mut Client,
    cluster: &mut Cluster,
    root: &std::path::Path,
    reference: &[Vec<DeltaRecord>],
    allow_empty: bool,
) -> Result<(), String> {
    match client.call(&Request::Shutdown) {
        Ok(Response::Ok(_)) => {}
        other => return Err(format!("cluster shutdown: {other:?}")),
    }
    for d in cluster.backends.iter_mut().flatten().flatten() {
        d.shutdown();
    }
    if let Some(mut d) = cluster.router.take() {
        d.shutdown();
    }
    for (k, recs) in reference.iter().enumerate() {
        let ref_dir = root.join(format!("ref{k}"));
        let db = ProfileDb::open(&ref_dir).map_err(|e| format!("reference db: {e}"))?;
        db.apply_deltas(recs)
            .map_err(|e| format!("reference apply shard {k}: {e}"))?;
        let want = entry_files(&ref_dir)?;
        if want.is_empty() && !allow_empty {
            return Err(format!("reference store for shard {k} is empty"));
        }
        for r in 0..CLUSTER_REPLICAS {
            let got = entry_files(&root.join(format!("s{k}r{r}")))?;
            if got != want {
                return Err(format!(
                    "DIVERGED: shard {k} replica {r} store differs from the uninterrupted \
                     reference ({} vs {} entry file(s)) — an acked merge was lost, a \
                     duplicate double-counted, or replicas split",
                    got.len(),
                    want.len()
                ));
            }
        }
    }
    Ok(())
}

/// Runs one cluster chaos scenario; returns its deterministic verdict
/// line. The kill point, victim, and chaos schedules are all functions
/// of `(seed, salt)`, so the line is identical at any `--jobs` level.
fn run_cluster_scenario(
    strided: &std::path::Path,
    router: &std::path::Path,
    bases: &[ProfileEntry],
    sc: &ClusterScenario,
    seed: u64,
) -> Result<String, String> {
    let plan = plan_traffic(bases, sc, seed)?;
    let (owner, texts, records) = (&plan.owner, &plan.texts, &plan.records);
    let total = texts.len();

    // Boot 3 shards × 2 replicas plus the router over them.
    let root = cluster_root(sc.index);
    let db_dir = |k: usize, r: usize| root.join(format!("s{k}r{r}"));
    let (mut cluster, router_addr) = boot_cluster_3x2(strided, router, &root, &[])?;
    let mut client = Client::connect_with(router_addr.as_str(), RetryPolicy::no_retries())
        .map_err(|e| format!("connect to router: {e}"))?;
    client.set_id_state(plan.id0);

    // Phase 1: merge traffic with a seeded mid-stream SIGKILL. A fully
    // dead shard must shed exactly its own key range with a typed
    // `unavailable shard=K`; every other key must keep being served.
    let kill_at = sc
        .kill
        .map(|_| CLUSTER_KEYS + (mix64(seed ^ sc.salt) % (total as u64 / 2)) as usize);
    let mut dead_shard = None;
    let mut acked = 0usize;
    let mut shed = 0usize;
    for i in 0..total {
        if Some(i) == kill_at {
            if let Some((k, both)) = sc.kill {
                for r in 0..CLUSTER_REPLICAS {
                    if both || r == 0 {
                        if let Some(mut d) = cluster.backends[k][r].take() {
                            d.kill();
                        }
                    }
                }
                if both {
                    dead_shard = Some(k);
                }
            }
        }
        let resp = client
            .call(&Request::MergeProfile {
                entry_text: texts[i].clone(),
            })
            .map_err(|e| format!("merge {i} transport: {e}"))?;
        let own = owner[i % CLUSTER_KEYS];
        if dead_shard == Some(own) {
            match resp {
                Response::Err {
                    kind: ErrorKind::Unavailable,
                    shard,
                    retry_after_ms,
                    ..
                } => {
                    if shard != Some(own as u32) {
                        return Err(format!(
                            "merge {i}: unavailable did not name dead shard {own}: {shard:?}"
                        ));
                    }
                    if retry_after_ms.is_none() {
                        return Err(format!("merge {i}: unavailable without retry-after hint"));
                    }
                    shed += 1;
                }
                other => {
                    return Err(format!(
                        "merge {i} for dead shard {own} answered {other:?} \
                         (expected typed unavailable)"
                    ))
                }
            }
        } else {
            match resp {
                Response::Ok(_) => acked += 1,
                other => {
                    return Err(format!(
                        "merge {i} on live shard {own} failed: {other:?} — \
                         unaffected key ranges must keep serving"
                    ))
                }
            }
        }
    }

    // Phase 2: restart the victims on fresh ports (startup recovery
    // replays their WAL), but do not re-point the router yet.
    if let Some((k, both)) = sc.kill {
        for r in 0..CLUSTER_REPLICAS {
            if both || r == 0 {
                cluster.backends[k][r] = Some(spawn_daemon(strided, &db_dir(k, r), None)?);
            }
        }
    }

    // Phase 3: replication weather — the adversarial at-least-once
    // network the dedup + commutative merge must absorb.
    chaos_weather(&cluster, owner, records, seed, sc.salt)?;

    // Phase 4: re-point the router at the restarted replicas; the lag
    // queues drain every delivery the outage deferred.
    if let Some((k, both)) = sc.kill {
        for r in 0..CLUSTER_REPLICAS {
            if both || r == 0 {
                let addr = match &cluster.backends[k][r] {
                    Some(d) => d.addr.clone(),
                    None => return Err(format!("restarted s{k}r{r} vanished")),
                };
                match client.call(&Request::RouteUpdate {
                    shard: k as u32,
                    replica: r as u32,
                    addr,
                }) {
                    Ok(Response::Ok(_)) => {}
                    other => return Err(format!("route-update s{k}r{r}: {other:?}")),
                }
            }
        }
    }
    let mut settled = false;
    for _ in 0..200 {
        let body = match client.call(&Request::Stats) {
            Ok(Response::Ok(b)) => b,
            other => return Err(format!("settle stats: {other:?}")),
        };
        let lag: Vec<&str> = body.lines().filter(|l| l.starts_with("lag ")).collect();
        if lag.len() == CLUSTER_SHARDS * CLUSTER_REPLICAS
            && lag.iter().all(|l| l.ends_with("queued=0"))
        {
            settled = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    if !settled {
        return Err("replication lag did not settle within 10s".to_string());
    }

    // Phase 5: stop the whole cluster (router shutdown fans out), then
    // hold every replica store to byte identity with an uninterrupted
    // reference applying the same deltas once, in submission order.
    let reference: Vec<Vec<DeltaRecord>> = (0..CLUSTER_SHARDS)
        .map(|k| {
            (0..total)
                .filter(|i| owner[i % CLUSTER_KEYS] == k)
                .map(|i| records[i].clone())
                .collect()
        })
        .collect();
    stop_and_compare(&mut client, &mut cluster, &root, &reference, false)?;
    let _ = std::fs::remove_dir_all(&root);
    Ok(format!(
        "ok: {total} merges ({acked} acked, {shed} shed typed-unavailable), \
         drop/dup/reorder absorbed, {} replica stores byte-identical to reference",
        CLUSTER_SHARDS * CLUSTER_REPLICAS
    ))
}

/// Self-healing scenario #4: kill one replica mid-traffic, restart it
/// with `--announce` on a fresh port, and let the router's probe loop
/// plus revival routine (module re-teach, hint drain, anti-entropy)
/// converge the cluster with zero operator verbs.
fn run_announce_scenario(
    strided: &std::path::Path,
    router: &std::path::Path,
    bases: &[ProfileEntry],
    sc: &ClusterScenario,
    seed: u64,
) -> Result<String, String> {
    let plan = plan_traffic(bases, sc, seed)?;
    let total = plan.texts.len();
    let (k_victim, _) = sc.kill.ok_or("announce scenario needs a victim")?;
    let root = cluster_root(sc.index);
    let (mut cluster, router_addr) = boot_cluster_3x2(strided, router, &root, &[])?;
    let mut client = Client::connect_with(router_addr.as_str(), RetryPolicy::no_retries())
        .map_err(|e| format!("connect to router: {e}"))?;
    client.set_id_state(plan.id0);

    // Merge traffic with a seeded mid-stream SIGKILL of one replica.
    // The sibling keeps acking every merge; the victim's share spools
    // as durable hints.
    let kill_at = CLUSTER_KEYS + (mix64(seed ^ sc.salt) % (total as u64 / 2)) as usize;
    for i in 0..total {
        if i == kill_at {
            if let Some(mut d) = cluster.backends[k_victim][0].take() {
                d.kill();
            }
        }
        match client.call(&Request::MergeProfile {
            entry_text: plan.texts[i].clone(),
        }) {
            Ok(Response::Ok(_)) => {}
            other => {
                return Err(format!(
                    "merge {i}: sibling must keep acking through a \
                     single-replica outage: {other:?}"
                ))
            }
        }
    }

    // Weather at the live replicas while the victim is still down.
    chaos_weather(&cluster, &plan.owner, &plan.records, seed, sc.salt)?;

    // Unattended failover: the replacement announces itself on a fresh
    // port; nobody calls route-update.
    cluster.backends[k_victim][0] = Some(spawn_daemon_with(
        strided,
        &root.join(format!("s{k_victim}r0")),
        None,
        &[
            "--announce".to_string(),
            format!("{router_addr}/{k_victim}/0"),
        ],
    )?);
    settle_selfhealed(&mut client, CLUSTER_SHARDS as u64)?;

    let reference: Vec<Vec<DeltaRecord>> = (0..CLUSTER_SHARDS)
        .map(|k| {
            (0..total)
                .filter(|i| plan.owner[i % CLUSTER_KEYS] == k)
                .map(|i| plan.records[i].clone())
                .collect()
        })
        .collect();
    stop_and_compare(&mut client, &mut cluster, &root, &reference, false)?;
    let _ = std::fs::remove_dir_all(&root);
    Ok(format!(
        "ok: {total} merges all acked through replica kill, restart self-announced \
         (zero operator verbs), hints drained, {} stores byte-identical to reference",
        CLUSTER_SHARDS * CLUSTER_REPLICAS
    ))
}

/// Self-healing scenario #5: a healthy run, then one fresh delta per
/// key injected behind the router's back into exactly one (seeded)
/// replica of its owning shard — a stand-in for a healed partition that
/// left replicas divergent. Only traffic-driven anti-entropy rounds may
/// reconverge them; no kill, no restart, no operator verbs.
fn run_antientropy_scenario(
    strided: &std::path::Path,
    router: &std::path::Path,
    bases: &[ProfileEntry],
    sc: &ClusterScenario,
    seed: u64,
) -> Result<String, String> {
    let plan = plan_traffic(bases, sc, seed)?;
    let total = plan.texts.len();
    let root = cluster_root(sc.index);
    let (mut cluster, router_addr) = boot_cluster_3x2(strided, router, &root, &[])?;
    let mut client = Client::connect_with(router_addr.as_str(), RetryPolicy::no_retries())
        .map_err(|e| format!("connect to router: {e}"))?;
    client.set_id_state(plan.id0);
    for i in 0..total {
        match client.call(&Request::MergeProfile {
            entry_text: plan.texts[i].clone(),
        }) {
            Ok(Response::Ok(_)) => {}
            other => return Err(format!("merge {i} on healthy cluster: {other:?}")),
        }
    }

    // Divergence injection: entry counts stay equal across replicas
    // (every key already exists), so only the per-key digests — and the
    // final byte-compare — can expose the drift.
    let extra_ids = id_stream(mix64(plan.id0 ^ 0x0d1f), CLUSTER_KEYS);
    let mut rng = Rng(mix64(seed ^ sc.salt ^ 0x9a97));
    let mut extras: Vec<(usize, DeltaRecord)> = Vec::new();
    for (i, (w, h)) in plan.keys.iter().enumerate() {
        let rec = DeltaRecord {
            req_id: extra_ids[i],
            entry_text: cluster_entry(&bases[i % bases.len()], w, *h, CLUSTER_ROUNDS).to_text(),
        };
        let k = plan.owner[i];
        let r = rng.below(CLUSTER_REPLICAS as u64) as usize;
        let Some(d) = &cluster.backends[k][r] else {
            return Err(format!("replica s{k}r{r} missing for divergence injection"));
        };
        let mut c = Client::connect_with(d.addr.as_str(), RetryPolicy::no_retries())
            .map_err(|e| format!("divergence connect s{k}r{r}: {e}"))?;
        match c.call(&Request::SyncDelta {
            batch_text: encode_delta_batch(std::slice::from_ref(&rec)),
        }) {
            Ok(Response::Ok(_)) => {}
            other => return Err(format!("divergence inject s{k}r{r}: {other:?}")),
        }
        extras.push((k, rec));
    }

    // Demand two full anti-entropy passes after the cluster looks quiet:
    // the first detects the digest mismatch and cross-sends retained
    // deltas, the second verifies convergence.
    settle_selfhealed(&mut client, 2 * CLUSTER_SHARDS as u64)?;

    let reference: Vec<Vec<DeltaRecord>> = (0..CLUSTER_SHARDS)
        .map(|k| {
            let mut v: Vec<DeltaRecord> = (0..total)
                .filter(|i| plan.owner[i % CLUSTER_KEYS] == k)
                .map(|i| plan.records[i].clone())
                .collect();
            v.extend(
                extras
                    .iter()
                    .filter(|(ek, _)| *ek == k)
                    .map(|(_, r)| r.clone()),
            );
            v
        })
        .collect();
    stop_and_compare(&mut client, &mut cluster, &root, &reference, false)?;
    let _ = std::fs::remove_dir_all(&root);
    Ok(format!(
        "ok: {total} merges + {CLUSTER_KEYS} divergent deltas behind the router, \
         anti-entropy reconverged (zero operator verbs), {} stores byte-identical",
        CLUSTER_SHARDS * CLUSTER_REPLICAS
    ))
}

/// Self-healing scenario #6: a replica dies before traffic and the
/// router runs with `--hint-cap 2`, so its spool overflows. The first
/// two merges for the victim's shard ack (sibling applies, hint
/// spools); every later one must be refused whole — typed
/// `handoff-full`, applied nowhere. Revival via `--announce` drains the
/// spool, and resending the refused merges on the same client lands
/// them cleanly.
fn run_hint_pressure_scenario(
    strided: &std::path::Path,
    router: &std::path::Path,
    bases: &[ProfileEntry],
    sc: &ClusterScenario,
    seed: u64,
) -> Result<String, String> {
    let plan = plan_traffic(bases, sc, seed)?;
    let total = plan.texts.len();
    let root = cluster_root(sc.index);
    let (mut cluster, router_addr) = boot_cluster_3x2(
        strided,
        router,
        &root,
        &["--hint-cap".to_string(), "2".to_string()],
    )?;
    // Victim: replica 0 of the first key's shard, killed before any
    // traffic so its spool fills while its sibling keeps acking.
    let k_victim = plan.owner[0];
    if let Some(mut d) = cluster.backends[k_victim][0].take() {
        d.kill();
    }
    let owned: Vec<usize> = (0..total)
        .filter(|i| plan.owner[i % CLUSTER_KEYS] == k_victim)
        .collect();
    let refused_expect: Vec<usize> = owned[2.min(owned.len())..].to_vec();

    let mut client = Client::connect_with(router_addr.as_str(), RetryPolicy::no_retries())
        .map_err(|e| format!("connect to router: {e}"))?;
    client.set_id_state(plan.id0);
    let mut acked: Vec<usize> = Vec::new();
    let mut refused: Vec<usize> = Vec::new();
    for i in 0..total {
        let resp = client
            .call(&Request::MergeProfile {
                entry_text: plan.texts[i].clone(),
            })
            .map_err(|e| format!("merge {i} transport: {e}"))?;
        match resp {
            Response::Ok(_) => acked.push(i),
            Response::Err {
                kind: ErrorKind::HandoffFull,
                shard,
                retry_after_ms,
                ..
            } => {
                if shard != Some(k_victim as u32) {
                    return Err(format!(
                        "merge {i}: handoff-full named shard {shard:?}, victim is {k_victim}"
                    ));
                }
                if retry_after_ms.is_none() {
                    return Err(format!("merge {i}: handoff-full without retry-after hint"));
                }
                refused.push(i);
            }
            other => {
                return Err(format!(
                    "merge {i}: {other:?} (expected ok or typed handoff-full)"
                ))
            }
        }
    }
    if refused != refused_expect {
        return Err(format!(
            "refusal schedule diverged: got {refused:?}, want {refused_expect:?} — \
             the overflowing spool must refuse exactly the overflow, applied nowhere"
        ));
    }

    // Revive via self-announce; the router drains the two spooled hints.
    cluster.backends[k_victim][0] = Some(spawn_daemon_with(
        strided,
        &root.join(format!("s{k_victim}r0")),
        None,
        &[
            "--announce".to_string(),
            format!("{router_addr}/{k_victim}/0"),
        ],
    )?);
    settle_selfhealed(&mut client, CLUSTER_SHARDS as u64)?;

    // The typed refusal invites a clean retry: resend every refused
    // merge on the same client. Only merges consume req-ids, so the
    // resends take exactly the next `refused.len()` ids of the stream.
    let resend_ids = {
        let all = id_stream(plan.id0, total + refused.len());
        all[total..].to_vec()
    };
    let mut resent: Vec<DeltaRecord> = Vec::new();
    for (j, &i) in refused.iter().enumerate() {
        match client.call(&Request::MergeProfile {
            entry_text: plan.texts[i].clone(),
        }) {
            Ok(Response::Ok(_)) => {}
            other => return Err(format!("resend of refused merge {i}: {other:?}")),
        }
        resent.push(DeltaRecord {
            req_id: resend_ids[j],
            entry_text: plan.texts[i].clone(),
        });
    }
    settle_selfhealed(&mut client, 0)?;

    let reference: Vec<Vec<DeltaRecord>> = (0..CLUSTER_SHARDS)
        .map(|k| {
            let mut v: Vec<DeltaRecord> = acked
                .iter()
                .filter(|&&i| plan.owner[i % CLUSTER_KEYS] == k)
                .map(|&i| plan.records[i].clone())
                .collect();
            if k == k_victim {
                v.extend(resent.iter().cloned());
            }
            v
        })
        .collect();
    let n_acked = acked.len();
    let n_refused = refused.len();
    stop_and_compare(&mut client, &mut cluster, &root, &reference, false)?;
    let _ = std::fs::remove_dir_all(&root);
    Ok(format!(
        "ok: {total} merges ({n_acked} acked, {n_refused} refused typed handoff-full \
         applied-nowhere), self-announce drained the spool, resends acked, \
         {} stores byte-identical",
        CLUSTER_SHARDS * CLUSTER_REPLICAS
    ))
}

/// Self-healing scenario #7: 8 writers hammer the router with heavy
/// merges concurrently — about twice the AIMD admission floor — with a
/// widened worker pool so concurrency is limited by the limiter, not
/// the socket queue. Sheds must be typed `busy` with a retry hint, and
/// every acked merge must survive to all replicas byte-identically.
/// The ack/shed split is load-timing dependent (AIMD is explicitly
/// outside the determinism contract), so the verdict reports only the
/// deterministic facts.
fn run_overload_scenario(
    strided: &std::path::Path,
    router: &std::path::Path,
    bases: &[ProfileEntry],
    sc: &ClusterScenario,
    seed: u64,
) -> Result<String, String> {
    const WRITERS: usize = 8;
    const MERGES_PER_WRITER: usize = 16;
    const KEYS_PER_WRITER: usize = 4;
    let root = cluster_root(sc.index);
    let (mut cluster, router_addr) = boot_cluster_3x2(
        strided,
        router,
        &root,
        &["--workers".to_string(), "16".to_string()],
    )?;

    // Fully precompute each writer's keys, texts, and predicted delta
    // records so its acked set maps to exact reference records.
    struct WriterPlan {
        texts: Vec<String>,
        records: Vec<(usize, DeltaRecord)>,
        id0: u64,
    }
    let map = ShardMap::new(CLUSTER_SHARDS as u32);
    let plans: Vec<WriterPlan> = (0..WRITERS)
        .map(|t| {
            let keys: Vec<(String, u64)> = (0..KEYS_PER_WRITER)
                .map(|j| {
                    (
                        format!("o{t}k{j}"),
                        0x4800 + (t * KEYS_PER_WRITER + j) as u64,
                    )
                })
                .collect();
            let texts: Vec<String> = (0..MERGES_PER_WRITER)
                .map(|i| {
                    let (w, h) = &keys[i % KEYS_PER_WRITER];
                    cluster_entry(&bases[(t + i) % bases.len()], w, *h, i / KEYS_PER_WRITER)
                        .to_text()
                })
                .collect();
            let id0 = mix64(seed ^ sc.salt ^ (t as u64).wrapping_mul(0x9e37_79b9));
            let records = id_stream(id0, MERGES_PER_WRITER)
                .into_iter()
                .zip(&texts)
                .enumerate()
                .map(|(i, (req_id, txt))| {
                    let (w, h) = &keys[i % KEYS_PER_WRITER];
                    (
                        map.shard_of(w, *h) as usize,
                        DeltaRecord {
                            req_id,
                            entry_text: txt.clone(),
                        },
                    )
                })
                .collect();
            WriterPlan {
                texts,
                records,
                id0,
            }
        })
        .collect();

    // Per writer: (acked shard-tagged records, shed count) or violation.
    type WriterOutcome = Result<(Vec<(usize, DeltaRecord)>, usize), String>;
    let results: Vec<WriterOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|p| {
                let addr = router_addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect_with(addr.as_str(), RetryPolicy::no_retries())
                        .map_err(|e| format!("writer connect: {e}"))?;
                    c.set_id_state(p.id0);
                    let mut acked = Vec::new();
                    let mut shed = 0usize;
                    for i in 0..MERGES_PER_WRITER {
                        let resp = c
                            .call(&Request::MergeProfile {
                                entry_text: p.texts[i].clone(),
                            })
                            .map_err(|e| format!("writer merge {i} transport: {e}"))?;
                        match resp {
                            Response::Ok(_) => acked.push(p.records[i].clone()),
                            Response::Err {
                                kind: ErrorKind::Busy,
                                retry_after_ms: Some(_),
                                ..
                            } => shed += 1,
                            other => {
                                return Err(format!(
                                    "writer merge {i}: untyped shed under overload: {other:?}"
                                ))
                            }
                        }
                    }
                    Ok((acked, shed))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("writer thread panicked".to_string()))
            })
            .collect()
    });
    let mut acked_all: Vec<(usize, DeltaRecord)> = Vec::new();
    let mut shed_any = false;
    for r in results {
        let (a, s) = r?;
        shed_any |= s > 0;
        acked_all.extend(a);
    }
    let _ = shed_any; // informational only: light load may admit everything

    let mut client = Client::connect_with(router_addr.as_str(), RetryPolicy::no_retries())
        .map_err(|e| format!("connect to router: {e}"))?;
    settle_selfhealed(&mut client, CLUSTER_SHARDS as u64)?;

    let reference: Vec<Vec<DeltaRecord>> = (0..CLUSTER_SHARDS)
        .map(|k| {
            acked_all
                .iter()
                .filter(|(rk, _)| *rk == k)
                .map(|(_, r)| r.clone())
                .collect()
        })
        .collect();
    stop_and_compare(&mut client, &mut cluster, &root, &reference, true)?;
    let _ = std::fs::remove_dir_all(&root);
    Ok(format!(
        "ok: overload 2x admission floor ({WRITERS} writers x {MERGES_PER_WRITER} merges), \
         every shed typed busy with retry hint, zero acked-merge loss, \
         {} stores byte-identical to acked-set reference",
        CLUSTER_SHARDS * CLUSTER_REPLICAS
    ))
}

/// The `--cluster` campaign driver; returns the process exit code.
fn cluster_main(jobs: usize, seed: u64) -> i32 {
    let (strided, router) = match (strided_bin(), router_bin()) {
        (Ok(s), Ok(r)) => (s, r),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("faultsim: {e}");
            return 2;
        }
    };
    let w = match workload_by_name("mcf", Scale::Test) {
        Some(w) => w,
        None => {
            eprintln!("faultsim: built-in workload mcf missing");
            return 2;
        }
    };
    let out = match run_profiling(
        &w.module,
        &w.train_args,
        ProfilingVariant::EdgeCheck,
        &PipelineConfig::default(),
    ) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("faultsim: base profiling run failed: {e}");
            return 2;
        }
    };
    let base = ProfileEntry::from_run("base", module_hash(&w.module), &out.edge, &out.stride);

    // Second base profile from the generated-workload subsystem: half the
    // chaos keys carry a seed-dependent genuine profile shape instead of
    // the one fixed hand-built benchmark. Generation and profiling happen
    // once, before the scenario fan-out, so reports stay jobs-invariant.
    let gspec = stride_genwork::generate(seed, 0, &stride_genwork::GenConfig::campaign());
    let gbuilt = stride_genwork::build(&gspec);
    let gout = match run_profiling(
        &gbuilt.module,
        &[0],
        ProfilingVariant::EdgeCheck,
        &PipelineConfig::default(),
    ) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("faultsim: generated base profiling run failed: {e}");
            return 2;
        }
    };
    let gbase = ProfileEntry::from_run(
        "genbase",
        module_hash(&gbuilt.module),
        &gout.edge,
        &gout.stride,
    );
    let bases = [base, gbase];

    let scenarios = cluster_campaign();
    println!(
        "== cluster chaos campaign: seed {seed}, {} scenario(s), {}x{} topology ==",
        scenarios.len(),
        CLUSTER_SHARDS,
        CLUSTER_REPLICAS
    );
    let results = parallel_map_isolated(&scenarios, jobs, |_, sc| match sc.heal {
        Heal::Operator => run_cluster_scenario(&strided, &router, &bases, sc, seed),
        Heal::Announce => run_announce_scenario(&strided, &router, &bases, sc, seed),
        Heal::AntiEntropy => run_antientropy_scenario(&strided, &router, &bases, sc, seed),
        Heal::HintPressure => run_hint_pressure_scenario(&strided, &router, &bases, sc, seed),
        Heal::Overload => run_overload_scenario(&strided, &router, &bases, sc, seed),
    });

    let mut panics = 0usize;
    let mut violations = 0usize;
    for (sc, result) in scenarios.iter().zip(results) {
        let label = match (sc.heal, sc.kill) {
            (Heal::Operator, Some((k, true))) => format!("kill-shard={k}+chaos"),
            (Heal::Operator, Some((k, false))) => format!("kill-replica={k}.0+chaos"),
            (Heal::Operator, None) => "no-kill+chaos".to_string(),
            (Heal::Announce, Some((k, _))) => format!("self-announce={k}.0"),
            (Heal::Announce, None) => "self-announce".to_string(),
            (Heal::AntiEntropy, _) => "anti-entropy".to_string(),
            (Heal::HintPressure, _) => "hint-overflow".to_string(),
            (Heal::Overload, _) => "overload-2x".to_string(),
        };
        match result {
            Ok(Ok(line)) => println!("  #{:<3} {label:<24} {line}", sc.index),
            Ok(Err(msg)) => {
                violations += 1;
                println!("  #{:<3} {label:<24} FAILED: {msg}", sc.index);
            }
            Err(tf) => {
                panics += 1;
                println!("  #{:<3} {label:<24} PANIC: {}", sc.index, tf.message);
            }
        }
    }
    println!(
        "campaign: {} scenario(s), {} panic(s), {} invariant violation(s)",
        scenarios.len(),
        panics,
        violations
    );
    i32::from(panics > 0 || violations > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Test;
    let mut jobs = default_jobs();
    let mut seed = 42u64;
    let mut service = false;
    let mut cluster = false;
    let mut single_plan: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match parse_jobs(args.get(i).map(String::as_str)) {
                    Ok(n) => n,
                    Err(msg) => {
                        eprintln!("faultsim: {msg}");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--plan" => {
                i += 1;
                single_plan = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--service" => service = true,
            "--cluster" => cluster = true,
            _ => usage(),
        }
        i += 1;
    }

    if cluster {
        std::process::exit(cluster_main(jobs, seed));
    }
    if service {
        std::process::exit(service_main(jobs, seed));
    }

    let config = PipelineConfig::default();
    let cache = RunCache::new();
    let scenarios: Vec<(String, &str)> = match &single_plan {
        Some(spec) => vec![(spec.clone(), "mcf")],
        None => CAMPAIGN
            .iter()
            .map(|&(spec, w)| (spec.to_string(), w))
            .collect(),
    };
    println!(
        "== fault campaign: seed {seed}, {} scenario(s), scale {} ==",
        scenarios.len(),
        match scale {
            Scale::Test => "test",
            Scale::Paper => "paper",
        }
    );

    let results = parallel_map_isolated(&scenarios, jobs, |_, (spec, wname)| {
        let workload = workload_by_name(wname, scale)
            .unwrap_or_else(|| panic!("unknown campaign workload {wname}"));
        run_scenario(&cache, &workload, &config, seed, spec)
    });

    let mut panics = 0usize;
    let mut violations = 0usize;
    let mut degraded = 0usize;
    for ((spec, wname), result) in scenarios.iter().zip(results) {
        let label = format!("{spec}@{wname}");
        match result {
            Ok(Ok(report)) => {
                if report.line.starts_with("degraded:") {
                    degraded += 1;
                }
                violations += report.violations;
                println!("  {label:<46} {}", report.line);
            }
            Ok(Err(msg)) => {
                degraded += 1;
                println!("  {label:<46} unusable: {msg}");
            }
            Err(tf) => {
                panics += 1;
                println!("  {label:<46} PANIC: {}", tf.message);
            }
        }
    }
    println!(
        "campaign: {} scenario(s), {} degraded to diagnostics, {} panic(s), {} invariant violation(s)",
        scenarios.len(),
        degraded,
        panics,
        violations
    );
    if panics > 0 || violations > 0 {
        std::process::exit(1);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: faultsim [--scale test|paper] [--jobs N] [--seed N] [--plan SPEC]\n\
         \x20      faultsim --service [--jobs N] [--seed N]\n\
         \x20      faultsim --cluster [--jobs N] [--seed N]\n\
         \n\
         \x20 --scale test|paper workload scale (default: test)\n\
         \x20 --jobs N           worker threads (default: available parallelism)\n\
         \x20 --seed N           campaign seed (default: 42)\n\
         \x20 --plan SPEC        run one fault plan instead of the built-in campaign,\n\
         \x20                    e.g. 'truncate=2;fuel=20000' (see repro --inject)\n\
         \x20 --service          crash-recovery campaign: SIGKILL and restart a real\n\
         \x20                    strided daemon mid-merge; no acked merge may be lost\n\
         \x20 --cluster          sharded chaos campaign: router + 3x2 strided cluster,\n\
         \x20                    shard kills, delta drop/dup/reorder, plus self-healing\n\
         \x20                    scenarios (announce-based failover, anti-entropy\n\
         \x20                    repair, hint-spool overflow, AIMD overload); replicas\n\
         \x20                    must converge byte-identically, typed shedding only"
    );
    std::process::exit(2);
}
