//! Seeded fault-injection campaign against the reproduction pipeline.
//!
//! ```text
//! faultsim [--scale test|paper] [--jobs N] [--seed N] [--plan SPEC]
//! ```
//!
//! Runs every scenario of a fault campaign (the built-in 14-scenario
//! campaign by default, or a single `--plan` spec) against its workload,
//! with each scenario panic-isolated, and checks the degradation
//! invariant for each: under injected profile loss the classifier may
//! only move loads *out of* SSST/PMST/WSST toward no-prefetch — the
//! faulted prefetch set must be a subset of the clean one. The campaign
//! report is byte-identical at every `--jobs` level and for every rerun
//! of the same seed.
//!
//! Exit status: 0 when every scenario either completed with the
//! invariant held or degraded to a structured diagnostic; 1 when any
//! scenario panicked or violated the invariant.

use stride_bench::{default_jobs, parallel_map_isolated, parse_jobs, RunCache};
use stride_core::{
    degradation_violations, FaultInjector, FaultPlan, PipelineConfig, ProfilingVariant,
};
use stride_workloads::{workload_by_name, Scale, Workload};

/// The built-in campaign: every fault kind at least once, single and
/// compound, spread over the three headline benchmarks.
const CAMPAIGN: &[(&str, &str)] = &[
    ("truncate=0", "mcf"),
    ("truncate=1", "gap"),
    ("truncate=2", "parser"),
    ("drop-sites=1", "mcf"),
    ("drop-sites=2", "gap"),
    ("corrupt=1", "parser"),
    ("drop-updates=90", "mcf"),
    ("clamp-freq=64", "gap"),
    ("clamp-stride=10", "parser"),
    ("fuel=20000", "mcf"),
    ("addr-limit=4096", "gap"),
    ("malformed-ir", "parser"),
    ("stale-profile", "mcf"),
    ("truncate=1;drop-updates=50;clamp-freq=1000", "gap"),
];

/// One scenario's deterministic report line(s).
struct ScenarioReport {
    line: String,
    violations: usize,
}

fn run_scenario(
    cache: &RunCache,
    workload: &Workload,
    config: &PipelineConfig,
    seed: u64,
    spec: &str,
) -> Result<ScenarioReport, String> {
    let plan = FaultPlan::parse(&format!("seed={seed};{spec}")).map_err(|e| e.to_string())?;
    let injector = FaultInjector::new(plan);
    let variant = ProfilingVariant::EdgeCheck;
    let clean = cache
        .speedup(
            &workload.module,
            &workload.train_args,
            &workload.ref_args,
            variant,
            config,
        )
        .map_err(|e| format!("clean pipeline failed: {e}"))?;
    match cache.speedup_faulted(
        &workload.module,
        workload.name,
        &workload.train_args,
        &workload.ref_args,
        variant,
        config,
        &injector,
    ) {
        Ok(faulted) => {
            let violations = degradation_violations(&clean.classification, &faulted.classification);
            let verdict = if violations.is_empty() {
                "invariant held".to_string()
            } else {
                format!("INVARIANT VIOLATED: {}", violations.join("; "))
            };
            Ok(ScenarioReport {
                line: format!(
                    "ok: prefetch sites {} -> {}, speedup {:.3} -> {:.3}, {}",
                    clean.classification.loads.len(),
                    faulted.classification.loads.len(),
                    clean.speedup,
                    faulted.speedup,
                    verdict
                ),
                violations: violations.len(),
            })
        }
        Err(e) => {
            // The pipeline degraded to a structured error: no prefetch set
            // at all, so the invariant holds trivially. Indent multi-line
            // diagnostics (the malformed-ir renderer shows the offending
            // source line with a caret).
            let detail = e.to_string().replace('\n', "\n        ");
            Ok(ScenarioReport {
                line: format!("degraded: {detail}"),
                violations: 0,
            })
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Test;
    let mut jobs = default_jobs();
    let mut seed = 42u64;
    let mut single_plan: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match parse_jobs(args.get(i).map(String::as_str)) {
                    Ok(n) => n,
                    Err(msg) => {
                        eprintln!("faultsim: {msg}");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--plan" => {
                i += 1;
                single_plan = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }

    let config = PipelineConfig::default();
    let cache = RunCache::new();
    let scenarios: Vec<(String, &str)> = match &single_plan {
        Some(spec) => vec![(spec.clone(), "mcf")],
        None => CAMPAIGN
            .iter()
            .map(|&(spec, w)| (spec.to_string(), w))
            .collect(),
    };
    println!(
        "== fault campaign: seed {seed}, {} scenario(s), scale {} ==",
        scenarios.len(),
        match scale {
            Scale::Test => "test",
            Scale::Paper => "paper",
        }
    );

    let results = parallel_map_isolated(&scenarios, jobs, |_, (spec, wname)| {
        let workload = workload_by_name(wname, scale)
            .unwrap_or_else(|| panic!("unknown campaign workload {wname}"));
        run_scenario(&cache, &workload, &config, seed, spec)
    });

    let mut panics = 0usize;
    let mut violations = 0usize;
    let mut degraded = 0usize;
    for ((spec, wname), result) in scenarios.iter().zip(results) {
        let label = format!("{spec}@{wname}");
        match result {
            Ok(Ok(report)) => {
                if report.line.starts_with("degraded:") {
                    degraded += 1;
                }
                violations += report.violations;
                println!("  {label:<46} {}", report.line);
            }
            Ok(Err(msg)) => {
                degraded += 1;
                println!("  {label:<46} unusable: {msg}");
            }
            Err(tf) => {
                panics += 1;
                println!("  {label:<46} PANIC: {}", tf.message);
            }
        }
    }
    println!(
        "campaign: {} scenario(s), {} degraded to diagnostics, {} panic(s), {} invariant violation(s)",
        scenarios.len(),
        degraded,
        panics,
        violations
    );
    if panics > 0 || violations > 0 {
        std::process::exit(1);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: faultsim [--scale test|paper] [--jobs N] [--seed N] [--plan SPEC]\n\
         \n\
         \x20 --scale test|paper workload scale (default: test)\n\
         \x20 --jobs N           worker threads (default: available parallelism)\n\
         \x20 --seed N           campaign seed (default: 42)\n\
         \x20 --plan SPEC        run one fault plan instead of the built-in campaign,\n\
         \x20                    e.g. 'truncate=2;fuel=20000' (see repro --inject)"
    );
    std::process::exit(2);
}
