//! Reproduction harness: figure/table generators (driven by the `repro`
//! binary), the parallel execution engine behind `--jobs`, the run
//! memoization store that shares simulations across figures, and the
//! std-only perf measurement used by the bench targets and `--bench-json`.

pub mod figures;
pub mod perf;

// The execution engine and run cache moved to `stride_core` so the profile
// daemon (`stride-server`) can share them without depending on this crate;
// re-exported here so existing `stride_bench::` imports keep working.
pub use stride_core::exec::{
    default_jobs, parallel_map, parallel_map_isolated, parse_jobs, TaskFailure,
};
pub use stride_core::runcache::{fingerprint_module, RunCache, RunCacheStats};

pub use figures::{
    fig15_table, fig16_speedups, fig17_load_mix, fig18_19_distributions, fig20_22_overheads,
    fig23_25_sensitivity, geomean, render_diagnostics, render_distribution, render_overheads,
    render_sensitivity, render_speedups, speedup_of, Diagnostic, FigureCtx, Partial,
    SensitivityRow, SpeedupRow,
};
pub use perf::{BenchEntry, BenchReport, FigurePerf, PerfSummary};
