//! Reproduction harness: figure/table generators (driven by the `repro`
//! binary) and shared helpers for the Criterion benches.

pub mod figures;

pub use figures::{
    fig15_table, fig16_speedups, fig17_load_mix, fig18_19_distributions, fig20_22_overheads,
    fig23_25_sensitivity, geomean, render_distribution, render_overheads, render_sensitivity,
    render_speedups, speedup_of, SensitivityRow, SpeedupRow,
};
