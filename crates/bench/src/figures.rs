//! One generator per table/figure of the paper's evaluation (§4).
//!
//! Each generator fans its (workload, variant) units out over the
//! [`crate::exec`] job pool and serves repeated runs from the shared
//! [`RunCache`], then returns structured rows; `render_*` helpers print
//! them in the layout of the corresponding figure. The `repro` binary
//! drives these. Results are collected in input order, so figure output is
//! byte-identical at every `--jobs` level.
//!
//! # Graceful degradation
//!
//! Every generator returns a [`Partial`]: the rows whose pipeline
//! completed, plus one [`Diagnostic`] per failed unit. A unit fails
//! either with a structured [`PipelineError`] (e.g. an injected fuel
//! fault) or by panicking — panics are caught per-unit by
//! [`crate::exec::parallel_map_isolated`], so one broken workload cannot
//! take down its siblings. Failures are reported in input order, keeping
//! the output byte-identical at every `--jobs` level.

use stride_core::exec::parallel_map_isolated;
use stride_core::runcache::RunCache;
use stride_core::{
    class_distribution, load_mix, prefetch_with_profiles, ClassDistribution, FaultInjector,
    LoadPopulation, OverheadOutcome, PipelineConfig, PipelineError, ProfilingVariant,
};
use stride_workloads::{all_workloads, Scale, Workload};

/// Geometric mean of a slice of ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Everything a figure generator needs: the workload suite, the pipeline
/// configuration, the memoizing run store, and the parallelism level.
pub struct FigureCtx<'a> {
    /// Workload scale (test or paper).
    pub scale: Scale,
    /// Pipeline configuration shared by every run.
    pub config: &'a PipelineConfig,
    /// Shared run memoization store.
    pub cache: &'a RunCache,
    /// Worker threads for the fan-out (1 = serial).
    pub jobs: usize,
    /// The benchmark suite, built once.
    pub workloads: Vec<Workload>,
    /// Optional fault plan applied to the speedup pipeline (`--inject`).
    pub injector: Option<&'a FaultInjector>,
}

impl<'a> FigureCtx<'a> {
    /// Builds the suite at `scale` and wraps the shared pieces.
    pub fn new(scale: Scale, config: &'a PipelineConfig, cache: &'a RunCache, jobs: usize) -> Self {
        FigureCtx {
            scale,
            config,
            cache,
            jobs,
            workloads: all_workloads(scale),
            injector: None,
        }
    }

    /// Attaches a fault injector (applied by the Fig. 16 speedup units).
    pub fn with_injector(mut self, injector: Option<&'a FaultInjector>) -> Self {
        self.injector = injector;
        self
    }
}

/// One failed figure unit, in a form stable across runs and `--jobs`
/// levels (no paths, addresses or timing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workload whose unit failed.
    pub workload: &'static str,
    /// What failed and why (includes the variant for per-variant units).
    pub detail: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.workload, self.detail)
    }
}

/// A figure's partial result: the rows that completed plus one
/// diagnostic per failed unit, both in deterministic input order.
#[derive(Clone, Debug)]
pub struct Partial<T> {
    /// Rows whose every unit completed.
    pub rows: Vec<T>,
    /// One entry per failed unit.
    pub failures: Vec<Diagnostic>,
}

impl<T> Partial<T> {
    /// Did every unit complete?
    pub fn complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The rows, or the first failure as an error message — for callers
    /// that want the pre-degradation all-or-nothing behaviour.
    pub fn into_strict(self) -> Result<Vec<T>, String> {
        match self.failures.first() {
            Some(d) => Err(d.to_string()),
            None => Ok(self.rows),
        }
    }
}

/// Renders failure diagnostics as `!!`-prefixed lines (empty input
/// renders nothing).
pub fn render_diagnostics(failures: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in failures {
        out.push_str(&format!("!! {d}\n"));
    }
    out
}

/// Runs `run` over `units` with per-unit panic isolation. Returns the
/// per-unit outcomes in input order plus a diagnostic per failure;
/// `describe` labels a unit for its diagnostic.
fn isolate<U, R>(
    ctx: &FigureCtx<'_>,
    units: &[U],
    describe: impl Fn(&U) -> (&'static str, String),
    run: impl Fn(usize, &U) -> Result<R, PipelineError> + Sync,
) -> (Vec<Option<R>>, Vec<Diagnostic>)
where
    U: Sync,
    R: Send,
{
    let results = parallel_map_isolated(units, ctx.jobs, |i, u| run(i, u));
    let mut out = Vec::with_capacity(units.len());
    let mut failures = Vec::new();
    for (u, r) in units.iter().zip(results) {
        match r {
            Ok(Ok(v)) => out.push(Some(v)),
            Ok(Err(e)) => {
                let (workload, what) = describe(u);
                failures.push(Diagnostic {
                    workload,
                    detail: format!("{what}{e}"),
                });
                out.push(None);
            }
            Err(tf) => {
                let (workload, what) = describe(u);
                failures.push(Diagnostic {
                    workload,
                    detail: format!("{what}panic: {}", tf.message),
                });
                out.push(None);
            }
        }
    }
    (out, failures)
}

/// Fig. 15: the benchmark table.
pub fn fig15_table(scale: Scale) -> String {
    let mut out = String::from("| Program | Lang | Description |\n|---|---|---|\n");
    for w in all_workloads(scale) {
        out.push_str(&format!(
            "| {} | {} | {} |\n",
            w.name, w.lang, w.description
        ));
    }
    out
}

/// One benchmark's speedups under every requested variant (Fig. 16 row).
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Benchmark name.
    pub name: &'static str,
    /// `(variant, speedup)` pairs in request order.
    pub speedups: Vec<(ProfilingVariant, f64)>,
}

fn unit_speedup(ctx: &FigureCtx<'_>, wi: usize, v: ProfilingVariant) -> Result<f64, PipelineError> {
    let w = &ctx.workloads[wi];
    let out = match ctx.injector {
        Some(inj) => ctx.cache.speedup_faulted(
            &w.module,
            w.name,
            &w.train_args,
            &w.ref_args,
            v,
            ctx.config,
            inj,
        )?,
        None => ctx
            .cache
            .speedup(&w.module, &w.train_args, &w.ref_args, v, ctx.config)?,
    };
    Ok(out.speedup)
}

/// Fig. 16: speedup of stride prefetching per profiling method. Every
/// (workload, variant) pair is an independent unit of work; a workload
/// with any failed unit is degraded to diagnostics while the remaining
/// rows complete.
pub fn fig16_speedups(ctx: &FigureCtx<'_>, variants: &[ProfilingVariant]) -> Partial<SpeedupRow> {
    let units: Vec<(usize, ProfilingVariant)> = (0..ctx.workloads.len())
        .flat_map(|wi| variants.iter().map(move |&v| (wi, v)))
        .collect();
    let (vals, failures) = isolate(
        ctx,
        &units,
        |&(wi, v)| (ctx.workloads[wi].name, format!("{v}: ")),
        |_, &(wi, v)| unit_speedup(ctx, wi, v),
    );
    let rows = ctx
        .workloads
        .iter()
        .enumerate()
        .filter_map(|(wi, w)| {
            let speedups: Option<Vec<(ProfilingVariant, f64)>> = variants
                .iter()
                .enumerate()
                .map(|(vi, &v)| vals[wi * variants.len() + vi].map(|s| (v, s)))
                .collect();
            speedups.map(|speedups| SpeedupRow {
                name: w.name,
                speedups,
            })
        })
        .collect();
    Partial { rows, failures }
}

/// Renders Fig. 16 rows (plus a geometric-mean line per variant).
pub fn render_speedups(rows: &[SpeedupRow]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    out.push_str(&format!("{:<14}", "benchmark"));
    for (v, _) in &rows[0].speedups {
        out.push_str(&format!("{:>20}", v.to_string()));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<14}", row.name));
        for (_, s) in &row.speedups {
            out.push_str(&format!("{s:>20.3}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<14}", "geomean"));
    for i in 0..rows[0].speedups.len() {
        let col: Vec<f64> = rows.iter().map(|r| r.speedups[i].1).collect();
        out.push_str(&format!("{:>20.3}", geomean(&col)));
    }
    out.push('\n');
    out
}

/// Fig. 17: percentage of in-loop vs out-loop load references per
/// benchmark (dynamic counts on the reference input).
pub fn fig17_load_mix(ctx: &FigureCtx<'_>) -> Partial<(&'static str, f64, f64)> {
    let (vals, failures) = isolate(
        ctx,
        &ctx.workloads,
        |w| (w.name, String::new()),
        |_, w| {
            let run = ctx.cache.plain_run(&w.module, &w.ref_args, ctx.config)?;
            let mix = load_mix(&w.module, &run.0);
            let f = mix.in_loop_fraction();
            Ok((w.name, f, 1.0 - f))
        },
    );
    Partial {
        rows: vals.into_iter().flatten().collect(),
        failures,
    }
}

/// Figs. 18/19: distribution of (out-loop / in-loop) load references by
/// stride property, from a naive-all profile on the train input.
pub fn fig18_19_distributions(
    ctx: &FigureCtx<'_>,
) -> Partial<(&'static str, ClassDistribution, ClassDistribution)> {
    let (vals, failures) = isolate(
        ctx,
        &ctx.workloads,
        |w| (w.name, String::new()),
        |_, w| {
            let outcome = ctx.cache.profiling(
                &w.module,
                ProfilingVariant::NaiveAll,
                &w.train_args,
                ctx.config,
            )?;
            let run = ctx.cache.plain_run(&w.module, &w.train_args, ctx.config)?;
            let out_loop = class_distribution(
                &w.module,
                &outcome.stride,
                &run.0,
                LoadPopulation::OutLoop,
                &ctx.config.prefetch,
            );
            let in_loop = class_distribution(
                &w.module,
                &outcome.stride,
                &run.0,
                LoadPopulation::InLoop,
                &ctx.config.prefetch,
            );
            Ok((w.name, out_loop, in_loop))
        },
    );
    Partial {
        rows: vals.into_iter().flatten().collect(),
        failures,
    }
}

/// Renders a Figs. 18/19 distribution table.
pub fn render_distribution(rows: &[(&'static str, ClassDistribution)]) -> String {
    let mut out = format!(
        "{:<14}{:>8}{:>8}{:>8}{:>10}\n",
        "benchmark", "SSST", "PMST", "WSST", "no-stride"
    );
    for (name, d) in rows {
        out.push_str(&format!(
            "{:<14}{:>7.1}%{:>7.1}%{:>7.1}%{:>9.1}%\n",
            name,
            d.ssst * 100.0,
            d.pmst * 100.0,
            d.wsst * 100.0,
            d.none * 100.0
        ));
    }
    out
}

/// One Fig. 20–22 row: a benchmark and its per-variant overhead outcomes.
pub type OverheadRow = (&'static str, Vec<(ProfilingVariant, OverheadOutcome)>);

/// Figs. 20–22: profiling overhead and strideProf/LFU processing rates,
/// per benchmark and variant, on the train input. The per-variant
/// profiling runs are shared with Fig. 16 through the run cache, and the
/// edge-only baseline is one run per workload.
pub fn fig20_22_overheads(
    ctx: &FigureCtx<'_>,
    variants: &[ProfilingVariant],
) -> Partial<OverheadRow> {
    let units: Vec<(usize, ProfilingVariant)> = (0..ctx.workloads.len())
        .flat_map(|wi| variants.iter().map(move |&v| (wi, v)))
        .collect();
    let (vals, failures) = isolate(
        ctx,
        &units,
        |&(wi, v)| (ctx.workloads[wi].name, format!("{v}: ")),
        |_, &(wi, v)| {
            let w = &ctx.workloads[wi];
            ctx.cache.overhead(&w.module, &w.train_args, v, ctx.config)
        },
    );
    let rows = ctx
        .workloads
        .iter()
        .enumerate()
        .filter_map(|(wi, w)| {
            let cols: Option<Vec<(ProfilingVariant, OverheadOutcome)>> = variants
                .iter()
                .enumerate()
                .map(|(vi, &v)| {
                    vals[wi * variants.len() + vi]
                        .as_ref()
                        .map(|o| (v, o.clone()))
                })
                .collect();
            cols.map(|cols| (w.name, cols))
        })
        .collect();
    Partial { rows, failures }
}

/// Renders one of Figs. 20–22 from the overhead data: `field` selects the
/// quantity (0 = overhead ratio, 1 = strideProf fraction, 2 = LFU
/// fraction).
pub fn render_overheads(
    rows: &[(&'static str, Vec<(ProfilingVariant, OverheadOutcome)>)],
    field: usize,
) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    out.push_str(&format!("{:<14}", "benchmark"));
    for (v, _) in &rows[0].1 {
        out.push_str(&format!("{:>20}", v.to_string()));
    }
    out.push('\n');
    let mut sums = vec![0.0; rows[0].1.len()];
    for (name, cols) in rows {
        out.push_str(&format!("{name:<14}"));
        for (i, (_, o)) in cols.iter().enumerate() {
            let x = match field {
                0 => o.overhead,
                1 => o.strideprof_fraction,
                2 => o.lfu_fraction,
                _ => 0.0,
            };
            sums[i] += x;
            out.push_str(&format!("{:>19.1}%", x * 100.0));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<14}", "average"));
    for s in &sums {
        out.push_str(&format!("{:>19.1}%", s / rows.len() as f64 * 100.0));
    }
    out.push('\n');
    out
}

/// One benchmark's input-sensitivity results (Figs. 23–25).
#[derive(Clone, Debug)]
pub struct SensitivityRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Profiles from the train input (Fig. 23's "train").
    pub train: f64,
    /// Profiles from the reference input (Fig. 23's "ref").
    pub reference: f64,
    /// Edge profile from ref, stride profile from train (Fig. 24).
    pub edge_ref_stride_train: f64,
    /// Edge profile from train, stride profile from ref (Fig. 25).
    pub edge_train_stride_ref: f64,
}

/// Figs. 23–25: sensitivity of the speedup to the profiling input, with
/// sample-edge-check profiling (§4.3). All four binaries run on the
/// reference input. The two profiling runs and the baseline come from the
/// run cache; the four transformed binaries are unique and run fresh.
pub fn fig23_25_sensitivity(ctx: &FigureCtx<'_>) -> Partial<SensitivityRow> {
    let variant = ProfilingVariant::SampleEdgeCheck;
    let (vals, failures) = isolate(
        ctx,
        &ctx.workloads,
        |w| (w.name, String::new()),
        |_, w| {
            let train_prof = ctx
                .cache
                .profiling(&w.module, variant, &w.train_args, ctx.config)?;
            let ref_prof = ctx
                .cache
                .profiling(&w.module, variant, &w.ref_args, ctx.config)?;
            let baseline = ctx.cache.plain_run(&w.module, &w.ref_args, ctx.config)?;
            let speedup_with = |edge: &stride_profiling::EdgeProfile,
                                stride: &stride_profiling::StrideProfile|
             -> Result<f64, PipelineError> {
                let (m, _, _) =
                    prefetch_with_profiles(&w.module, edge, train_prof.source, stride, ctx.config);
                let run = ctx.cache.plain_run(&m, &w.ref_args, ctx.config)?;
                Ok(baseline.0.cycles as f64 / run.0.cycles.max(1) as f64)
            };
            Ok(SensitivityRow {
                name: w.name,
                train: speedup_with(&train_prof.edge, &train_prof.stride)?,
                reference: speedup_with(&ref_prof.edge, &ref_prof.stride)?,
                edge_ref_stride_train: speedup_with(&ref_prof.edge, &train_prof.stride)?,
                edge_train_stride_ref: speedup_with(&train_prof.edge, &ref_prof.stride)?,
            })
        },
    );
    Partial {
        rows: vals.into_iter().flatten().collect(),
        failures,
    }
}

/// Renders the Figs. 23–25 sensitivity table.
pub fn render_sensitivity(rows: &[SensitivityRow]) -> String {
    let mut out = format!(
        "{:<14}{:>10}{:>10}{:>24}{:>24}\n",
        "benchmark", "train", "ref", "edge.ref-stride.train", "edge.train-stride.ref"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14}{:>10.3}{:>10.3}{:>24.3}{:>24.3}\n",
            r.name, r.train, r.reference, r.edge_ref_stride_train, r.edge_train_stride_ref
        ));
    }
    out
}

/// Convenience: a single benchmark's full speedup pipeline (used by tests
/// and the bench targets).
///
/// # Errors
///
/// Propagates the pipeline's [`PipelineError`].
pub fn speedup_of(
    w: &Workload,
    variant: ProfilingVariant,
    config: &PipelineConfig,
) -> Result<f64, PipelineError> {
    Ok(
        stride_core::measure_speedup(&w.module, &w.train_args, &w.ref_args, variant, config)?
            .speedup,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_core::{FaultInjector, FaultPlan};

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[1.59]) - 1.59).abs() < 1e-9);
    }

    #[test]
    fn fig15_lists_all_twelve() {
        let t = fig15_table(Scale::Test);
        assert_eq!(t.lines().count(), 14); // header + separator + 12
        assert!(t.contains("181.mcf"));
        assert!(t.contains("Combinatorial Optimization"));
    }

    #[test]
    fn render_speedups_includes_geomean() {
        let rows = vec![SpeedupRow {
            name: "181.mcf",
            speedups: vec![(ProfilingVariant::EdgeCheck, 1.5)],
        }];
        let s = render_speedups(&rows);
        assert!(s.contains("geomean"));
        assert!(s.contains("1.500"));
    }

    #[test]
    fn fig17_runs_at_test_scale() {
        let config = PipelineConfig::default();
        let cache = RunCache::new();
        let ctx = FigureCtx::new(Scale::Test, &config, &cache, 2);
        let rows = fig17_load_mix(&ctx).into_strict().unwrap();
        assert_eq!(rows.len(), 12);
        for (name, in_f, out_f) in rows {
            assert!((in_f + out_f - 1.0).abs() < 1e-9, "{name}: fractions");
        }
    }

    #[test]
    fn fig16_shares_runs_with_fig20_22() {
        let config = PipelineConfig::default();
        let cache = RunCache::new();
        let ctx = FigureCtx::new(Scale::Test, &config, &cache, 2);
        let variants = [ProfilingVariant::EdgeCheck];
        fig16_speedups(&ctx, &variants).into_strict().unwrap();
        let after_fig16 = cache.stats();
        fig20_22_overheads(&ctx, &variants).into_strict().unwrap();
        let after_fig20 = cache.stats();
        // fig20-22 adds only the 12 edge-only baselines; all 12 profiling
        // runs hit the cache.
        assert_eq!(after_fig20.misses - after_fig16.misses, 12);
        assert!(after_fig20.hits >= after_fig16.hits + 12);
    }

    #[test]
    fn injected_fuel_fault_degrades_one_row_and_keeps_the_rest() {
        let config = PipelineConfig::default();
        let cache = RunCache::new();
        let plan = FaultPlan::parse("seed=1;fuel=100@181.mcf").unwrap();
        let injector = FaultInjector::new(plan);
        let ctx = FigureCtx::new(Scale::Test, &config, &cache, 2).with_injector(Some(&injector));
        let partial = fig16_speedups(&ctx, &[ProfilingVariant::EdgeCheck]);
        assert_eq!(partial.rows.len(), 11, "only the targeted row degrades");
        assert!(partial.rows.iter().all(|r| r.name != "181.mcf"));
        assert_eq!(partial.failures.len(), 1);
        let d = &partial.failures[0];
        assert_eq!(d.workload, "181.mcf");
        assert!(d.detail.contains("budget exhausted"), "{}", d.detail);
        let rendered = render_diagnostics(&partial.failures);
        assert!(rendered.starts_with("!! 181.mcf:"));
    }

    #[test]
    fn injected_profile_faults_uphold_degradation_invariant() {
        // A global table-truncation fault may only shrink the prefetch
        // set; the classified sites under fault are a subset of clean.
        let config = PipelineConfig::default();
        let cache = RunCache::new();
        let w = stride_workloads::workload_by_name("mcf", Scale::Test).unwrap();
        let clean = cache
            .speedup(
                &w.module,
                &w.train_args,
                &w.ref_args,
                ProfilingVariant::EdgeCheck,
                &config,
            )
            .unwrap();
        let plan = FaultPlan::parse("seed=5;truncate=1;drop-sites=2").unwrap();
        let injector = FaultInjector::new(plan);
        let faulted = cache
            .speedup_faulted(
                &w.module,
                w.name,
                &w.train_args,
                &w.ref_args,
                ProfilingVariant::EdgeCheck,
                &config,
                &injector,
            )
            .unwrap();
        let violations =
            stride_core::degradation_violations(&clean.classification, &faulted.classification);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(faulted.classification.loads.len() <= clean.classification.loads.len());
    }
}
