//! Run memoization for the reproduction harness.
//!
//! Most figures re-simulate identical configurations: Figs. 16 and 20–22
//! share every (workload, variant) train-input profiling run, Figs. 16, 17
//! and 23–25 share the uninstrumented reference-input baselines, the
//! edge-only overhead baseline of Figs. 20–22 is one run per workload (not
//! one per variant), and transformed-binary runs are keyed by module
//! *content*, so profiling variants or profile sources that select the
//! same prefetches share one reference run. The [`RunCache`] shares those
//! results across figures (and across worker threads — it is `Sync`, with
//! per-key [`OnceLock`]s so a result is computed exactly once even under
//! contention).
//!
//! Keys include a fingerprint of the parts of the [`PipelineConfig`] that
//! can affect the run: baselines depend only on the VM cost model and the
//! cache hierarchy, while profiling runs also depend on the prefetch
//! (instrumentation) parameters — so an ablation sweep over feedback
//! thresholds still shares its baselines across every sweep point.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use stride_core::{
    corrupt_ir_text, prefetch_with_profiles, run_edge_only, run_profiling, run_uninstrumented,
    FaultInjector, OverheadOutcome, PipelineConfig, PipelineError, ProfileOutcome,
    ProfilingVariant, SpeedupOutcome,
};
use stride_ir::Module;
use stride_memsim::HierarchyStats;
use stride_profiling::EdgeProfile;
use stride_vm::RunResult;
use stride_workloads::{Scale, Workload};

/// What a cached run is keyed by (beyond workload/scale/config).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum RunKind {
    /// Edge-frequency-only instrumented run.
    EdgeOnly,
    /// Integrated profiling run under a variant.
    Profiling(ProfilingVariant),
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Key {
    workload: &'static str,
    scale: Scale,
    kind: RunKind,
    args: Vec<i64>,
    config_fingerprint: u64,
}

/// Key of an uninstrumented run: the module *content* (not its origin),
/// the arguments, and the machine config. Two different profiling
/// variants that select the same prefetches produce byte-identical
/// transformed modules, so their reference runs collapse to one entry —
/// and a transform that inserts nothing shares the workload's baseline.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct PlainKey {
    module_fingerprint: u64,
    args: Vec<i64>,
    config_fingerprint: u64,
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, PipelineError>>>;

/// Counters describing cache effectiveness and total simulation volume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that ran a fresh simulation.
    pub misses: u64,
    /// Dynamic loads executed by fresh simulations (cached runs add 0).
    pub sim_loads: u64,
    /// Demand accesses (loads + stores) seen by the cache simulator in
    /// fresh simulations.
    pub sim_accesses: u64,
}

/// The memoizing run store shared by all figure generators and workers.
#[derive(Default)]
pub struct RunCache {
    plain_runs: Mutex<HashMap<PlainKey, Slot<(RunResult, HierarchyStats)>>>,
    edge_runs: Mutex<HashMap<Key, Slot<(EdgeProfile, RunResult)>>>,
    profiles: Mutex<HashMap<Key, Slot<ProfileOutcome>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    sim_loads: AtomicU64,
    sim_accesses: AtomicU64,
}

/// Fingerprint of the config parts an *uninstrumented* run can observe:
/// the VM cost model and the cache hierarchy.
fn fingerprint_machine(config: &PipelineConfig) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{:?}|{:?}", config.vm, config.hierarchy).hash(&mut h);
    h.finish()
}

/// Fingerprint of the whole config (instrumented runs also observe the
/// prefetch/selection parameters).
fn fingerprint_full(config: &PipelineConfig) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{:?}", config.prefetch).hash(&mut h);
    h.write_u64(fingerprint_machine(config));
    h.finish()
}

/// Content fingerprint of a module. The `Debug` form covers every field
/// the interpreter can observe (functions, blocks, instructions, globals,
/// entry), so equal fingerprints mean behaviourally identical programs.
fn fingerprint_module(module: &Module) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{module:?}").hash(&mut h);
    h.finish()
}

impl RunCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache effectiveness and simulation-volume counters so far.
    pub fn stats(&self) -> RunCacheStats {
        RunCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sim_loads: self.sim_loads.load(Ordering::Relaxed),
            sim_accesses: self.sim_accesses.load(Ordering::Relaxed),
        }
    }

    fn record_run(&self, run: &RunResult) {
        self.sim_loads.fetch_add(run.loads, Ordering::Relaxed);
        self.sim_accesses
            .fetch_add(run.loads + run.stores, Ordering::Relaxed);
    }

    /// Looks `key` up in `map`, computing with `compute` exactly once per
    /// key (other threads block on the same slot rather than recomputing).
    fn get_or_run<K, T, F>(
        &self,
        map: &Mutex<HashMap<K, Slot<T>>>,
        key: K,
        compute: F,
    ) -> Result<Arc<T>, PipelineError>
    where
        K: std::hash::Hash + Eq,
        F: FnOnce() -> Result<T, PipelineError>,
    {
        let slot = {
            let mut map = map.lock().expect("run-cache lock");
            map.entry(key).or_default().clone()
        };
        let mut ran = false;
        let result = slot.get_or_init(|| {
            ran = true;
            compute().map(Arc::new)
        });
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Uninstrumented run of `w.module` with `args` (memoized). Keyed by
    /// module content, so it shares entries with [`RunCache::plain_run`]
    /// when a prefetch transform turns out to be a no-op.
    ///
    /// # Errors
    ///
    /// Propagates the underlying run's [`PipelineError`].
    pub fn baseline(
        &self,
        w: &Workload,
        _scale: Scale,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Result<Arc<(RunResult, HierarchyStats)>, PipelineError> {
        self.plain_run(&w.module, args, config)
    }

    /// Edge-frequency-only instrumented run (memoized). The edge-only
    /// instrumentation does not read the prefetch config, so ablation
    /// sweeps share this run too.
    ///
    /// # Errors
    ///
    /// Propagates the underlying run's [`PipelineError`].
    pub fn edge_only(
        &self,
        w: &Workload,
        scale: Scale,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Result<Arc<(EdgeProfile, RunResult)>, PipelineError> {
        let key = Key {
            workload: w.name,
            scale,
            kind: RunKind::EdgeOnly,
            args: args.to_vec(),
            config_fingerprint: fingerprint_machine(config),
        };
        self.get_or_run(&self.edge_runs, key, || {
            let out = run_edge_only(&w.module, args, config)?;
            self.record_run(&out.1);
            Ok(out)
        })
    }

    /// Integrated profiling run under `variant` with `args` (memoized).
    ///
    /// # Errors
    ///
    /// Propagates the underlying run's [`PipelineError`].
    pub fn profiling(
        &self,
        w: &Workload,
        scale: Scale,
        variant: ProfilingVariant,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Result<Arc<ProfileOutcome>, PipelineError> {
        let key = Key {
            workload: w.name,
            scale,
            kind: RunKind::Profiling(variant),
            args: args.to_vec(),
            config_fingerprint: fingerprint_full(config),
        };
        self.get_or_run(&self.profiles, key, || {
            let out = run_profiling(&w.module, args, variant, config)?;
            self.record_run(&out.run);
            Ok(out)
        })
    }

    /// Uninstrumented run of an arbitrary (e.g. transformed) module,
    /// memoized by the module's *content*: Figs. 16 and 23–25 transform
    /// the same workload under many profile sources, and whenever two
    /// sources select the same prefetches the resulting modules — and
    /// hence this run — are identical.
    ///
    /// # Errors
    ///
    /// Propagates the underlying run's [`PipelineError`].
    pub fn plain_run(
        &self,
        module: &Module,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Result<Arc<(RunResult, HierarchyStats)>, PipelineError> {
        let key = PlainKey {
            module_fingerprint: fingerprint_module(module),
            args: args.to_vec(),
            config_fingerprint: fingerprint_machine(config),
        };
        self.get_or_run(&self.plain_runs, key, || {
            let out = run_uninstrumented(module, args, config)?;
            self.record_run(&out.0);
            Ok(out)
        })
    }

    /// The Fig. 16 speedup experiment with its train-input profiling run,
    /// reference-input baseline, and transformed-binary run all served
    /// from the cache (the last keyed by transformed-module content).
    /// Equivalent to [`stride_core::measure_speedup`].
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's [`PipelineError`].
    pub fn speedup(
        &self,
        w: &Workload,
        scale: Scale,
        variant: ProfilingVariant,
        config: &PipelineConfig,
    ) -> Result<SpeedupOutcome, PipelineError> {
        // The two-pass baseline performs its own double profiling pass;
        // its inner edge-only run is not shared here, but the profiling
        // outcome as a whole still memoizes.
        let outcome = self.profiling(w, scale, variant, &w.train_args, config)?;
        let (transformed, classification, report) = prefetch_with_profiles(
            &w.module,
            &outcome.edge,
            outcome.source,
            &outcome.stride,
            config,
        );
        let base = self.baseline(w, scale, &w.ref_args, config)?;
        let pf = self.plain_run(&transformed, &w.ref_args, config)?;
        Ok(SpeedupOutcome {
            baseline_cycles: base.0.cycles,
            prefetch_cycles: pf.0.cycles,
            speedup: base.0.cycles as f64 / pf.0.cycles.max(1) as f64,
            classification,
            report,
            baseline_mem: base.1,
            prefetch_mem: pf.1,
        })
    }

    /// [`RunCache::speedup`] under a fault plan: the profiling run uses
    /// the injector's VM overrides (and is cached under that distinct
    /// config fingerprint), the collected profiles are mutated per the
    /// plan, and the measurement runs stay clean — still served from and
    /// shared with the unfaulted cache entries.
    ///
    /// # Errors
    ///
    /// Propagates injected profiling-run failures (fuel, address limit)
    /// and the parser's located error for a `malformed-ir` scenario.
    pub fn speedup_faulted(
        &self,
        w: &Workload,
        scale: Scale,
        variant: ProfilingVariant,
        config: &PipelineConfig,
        injector: &FaultInjector,
    ) -> Result<SpeedupOutcome, PipelineError> {
        if !injector.affects(w.name) {
            return self.speedup(w, scale, variant, config);
        }
        if injector.wants_malformed_ir(w.name) {
            let text = corrupt_ir_text(
                injector.plan().seed,
                &stride_ir::module_to_string(&w.module),
            );
            if let Err(e) = stride_ir::module_from_string(&text) {
                // Render the offending source line (with a caret) into the
                // diagnostic so the campaign report shows exactly what the
                // parser rejected.
                return Err(PipelineError::Malformed(format!(
                    "injected IR corruption: {}",
                    e.render(&text)
                )));
            }
        }
        let mut profiling_config = *config;
        profiling_config.vm = injector.vm_overrides(w.name, profiling_config.vm);
        let outcome = self.profiling(w, scale, variant, &w.train_args, &profiling_config)?;
        let mut edge = outcome.edge.clone();
        let mut stride = outcome.stride.clone();
        injector.apply_to_profiles(w.name, &mut edge, &mut stride);
        let (transformed, classification, report) =
            prefetch_with_profiles(&w.module, &edge, outcome.source, &stride, config);
        let base = self.baseline(w, scale, &w.ref_args, config)?;
        let pf = self.plain_run(&transformed, &w.ref_args, config)?;
        Ok(SpeedupOutcome {
            baseline_cycles: base.0.cycles,
            prefetch_cycles: pf.0.cycles,
            speedup: base.0.cycles as f64 / pf.0.cycles.max(1) as f64,
            classification,
            report,
            baseline_mem: base.1,
            prefetch_mem: pf.1,
        })
    }

    /// The Figs. 20–22 overhead experiment with both underlying runs
    /// served from the cache. Equivalent to
    /// [`stride_core::measure_overhead`].
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's [`PipelineError`].
    pub fn overhead(
        &self,
        w: &Workload,
        scale: Scale,
        variant: ProfilingVariant,
        config: &PipelineConfig,
    ) -> Result<OverheadOutcome, PipelineError> {
        let edge = self.edge_only(w, scale, &w.train_args, config)?;
        let outcome = self.profiling(w, scale, variant, &w.train_args, config)?;
        let edge_run = &edge.1;
        let loads = outcome.run.loads.max(1) as f64;
        Ok(OverheadOutcome {
            edge_cycles: edge_run.cycles,
            integrated_cycles: outcome.run.cycles,
            overhead: (outcome.run.cycles as f64 - edge_run.cycles as f64)
                / edge_run.cycles.max(1) as f64,
            strideprof_fraction: outcome.stats.processed as f64 / loads,
            lfu_fraction: outcome.stats.lfu_inserts as f64 / loads,
            call_fraction: outcome.stats.calls as f64 / loads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_core::{measure_overhead, measure_speedup};
    use stride_workloads::workload_by_name;

    fn test_setup() -> (Workload, PipelineConfig) {
        (
            workload_by_name("gzip", Scale::Test).unwrap(),
            PipelineConfig::default(),
        )
    }

    #[test]
    fn baseline_hits_after_first_run() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        let a = cache.baseline(&w, Scale::Test, &w.ref_args, &cfg).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);
        let b = cache.baseline(&w, Scale::Test, &w.ref_args, &cfg).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(a.0.cycles, b.0.cycles);
        assert!(cache.stats().sim_loads > 0);
    }

    #[test]
    fn different_args_are_different_entries() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        cache.baseline(&w, Scale::Test, &w.ref_args, &cfg).unwrap();
        cache
            .baseline(&w, Scale::Test, &w.train_args, &cfg)
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn machine_config_change_invalidates_baseline() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        cache.baseline(&w, Scale::Test, &w.ref_args, &cfg).unwrap();
        let mut faster = cfg;
        faster.hierarchy.mem_latency += 40;
        cache
            .baseline(&w, Scale::Test, &w.ref_args, &faster)
            .unwrap();
        assert_eq!(cache.stats().misses, 2, "changed hierarchy must re-run");
    }

    #[test]
    fn prefetch_config_change_keeps_baseline_but_invalidates_profiling() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        cache.baseline(&w, Scale::Test, &w.ref_args, &cfg).unwrap();
        cache
            .profiling(
                &w,
                Scale::Test,
                ProfilingVariant::EdgeCheck,
                &w.train_args,
                &cfg,
            )
            .unwrap();
        let mut tweaked = cfg;
        tweaked.prefetch.trip_count_threshold *= 2;
        // baseline does not observe prefetch config: hit
        cache
            .baseline(&w, Scale::Test, &w.ref_args, &tweaked)
            .unwrap();
        // profiling does: miss
        cache
            .profiling(
                &w,
                Scale::Test,
                ProfilingVariant::EdgeCheck,
                &w.train_args,
                &tweaked,
            )
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn variants_do_not_share_profiling_entries() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        for v in [ProfilingVariant::EdgeCheck, ProfilingVariant::NaiveAll] {
            cache
                .profiling(&w, Scale::Test, v, &w.train_args, &cfg)
                .unwrap();
        }
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cached_speedup_matches_uncached_measure() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        let cached = cache
            .speedup(&w, Scale::Test, ProfilingVariant::EdgeCheck, &cfg)
            .unwrap();
        let direct = measure_speedup(
            &w.module,
            &w.train_args,
            &w.ref_args,
            ProfilingVariant::EdgeCheck,
            &cfg,
        )
        .unwrap();
        assert_eq!(cached.baseline_cycles, direct.baseline_cycles);
        assert_eq!(cached.prefetch_cycles, direct.prefetch_cycles);
        assert_eq!(
            cached.report.prefetches_inserted,
            direct.report.prefetches_inserted
        );
    }

    #[test]
    fn cached_overhead_matches_uncached_measure() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        let v = ProfilingVariant::NaiveLoop;
        let cached = cache.overhead(&w, Scale::Test, v, &cfg).unwrap();
        let direct = measure_overhead(&w.module, &w.train_args, v, &cfg).unwrap();
        assert_eq!(cached.edge_cycles, direct.edge_cycles);
        assert_eq!(cached.integrated_cycles, direct.integrated_cycles);
        assert!((cached.overhead - direct.overhead).abs() < 1e-12);
    }

    #[test]
    fn overhead_reuses_speedup_profiling_run() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        let v = ProfilingVariant::EdgeCheck;
        cache.speedup(&w, Scale::Test, v, &cfg).unwrap();
        let before = cache.stats();
        cache.overhead(&w, Scale::Test, v, &cfg).unwrap();
        let after = cache.stats();
        // only the edge-only baseline is new; the profiling run hits
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn identical_transformed_modules_share_one_run() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        let copy = w.module.clone();
        cache.plain_run(&w.module, &w.ref_args, &cfg).unwrap();
        cache.plain_run(&copy, &w.ref_args, &cfg).unwrap();
        let s = cache.stats();
        assert_eq!(s.misses, 1, "content-identical modules share one run");
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn noop_transform_shares_the_baseline_run() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        let base = cache.baseline(&w, Scale::Test, &w.ref_args, &cfg).unwrap();
        // A transform that inserted nothing leaves the module identical.
        let untouched = w.module.clone();
        let run = cache.plain_run(&untouched, &w.ref_args, &cfg).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(base.0.cycles, run.0.cycles);
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let (w, cfg) = test_setup();
        let cache = RunCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    cache
                        .baseline(&w, Scale::Test, &w.ref_args, &cfg)
                        .unwrap()
                        .0
                        .cycles
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one computation under contention");
        assert_eq!(stats.hits, 3);
    }
}
