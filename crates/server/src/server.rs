//! The daemon: acceptor thread, bounded connection queue, worker pool,
//! graceful drain-then-shutdown.

use crate::limiter::{cost_of, AimdLimiter, Completion};
use crate::proto::{
    decode_request, encode_frame, read_frame, write_frame, ErrorKind, Request, Response,
};
use crate::queue::BoundedQueue;
use crate::service::{Service, ServiceConfig};
use std::io;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use stride_core::{parallel_map_isolated, FaultInjector, FaultKind};

/// Milliseconds a shed client should wait before retrying (the hint on
/// `busy` responses).
pub const BUSY_RETRY_AFTER_MS: u64 = 50;

/// Server-side network faults, distilled from the fault plan: each acts
/// on the `nth` (1-based, across all connections) response.
#[derive(Clone, Copy, Debug, Default)]
struct NetFaults {
    drop_nth: Option<u64>,
    trunc_nth: Option<u64>,
    reset_nth: Option<u64>,
    stall_ms: Option<u64>,
}

fn net_faults_of(injector: Option<&FaultInjector>) -> NetFaults {
    let mut faults = NetFaults::default();
    let Some(injector) = injector else {
        return faults;
    };
    for scenario in &injector.plan().scenarios {
        match scenario.kind {
            FaultKind::NetDropFrame { nth } => faults.drop_nth = Some(nth),
            FaultKind::NetTruncFrame { nth } => faults.trunc_nth = Some(nth),
            FaultKind::NetReset { nth } => faults.reset_nth = Some(nth),
            FaultKind::NetStall { ms } => faults.stall_ms = Some(ms),
            // NetDupFrame is a client-side fault (duplicate request
            // delivery); a server duplicating responses would desync
            // every lockstep client.
            _ => {}
        }
    }
    faults
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded connection-queue capacity; connections arriving beyond it
    /// are answered with a `busy` error and closed (backpressure instead
    /// of unbounded memory).
    pub queue_cap: usize,
    /// Everything request handling needs.
    pub service: ServiceConfig,
}

impl ServerConfig {
    /// Loopback on an ephemeral port, 4 workers, a 64-connection queue.
    pub fn loopback(service: ServiceConfig) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            service,
        }
    }
}

struct Shared {
    queue: BoundedQueue<TcpStream>,
    service: Service,
    shutdown: AtomicBool,
    net_faults: NetFaults,
    /// Responses sent across all connections (drives nth-response net
    /// faults).
    responses: AtomicU64,
    /// Connections refused with `busy` because the queue was full.
    shed: stride_core::Counter,
    /// Connection-queue depth; its high-water mark survives in the
    /// gauge's max.
    queue_depth: stride_core::Gauge,
    /// AIMD admission control: requests over the adaptive in-flight
    /// cost ceiling are shed with `busy` at the door.
    limiter: AimdLimiter,
    /// Requests shed by the limiter (as opposed to the connection
    /// queue's `server.shed`).
    limiter_shed: stride_core::Counter,
    /// Mirrors of the limiter's ceiling and admitted cost.
    limiter_limit: stride_core::Gauge,
    limiter_in_flight: stride_core::Gauge,
}

/// A running daemon; dropping the handle does *not* stop it — send a
/// `shutdown` request or call [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and `workers` worker threads, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// Socket or database-directory failures.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let net_faults = net_faults_of(config.service.injector.as_ref());
        let service = Service::new(config.service)
            .map_err(|e| io::Error::other(format!("profile db: {e}")))?;
        let shed = service.obs().counter("server.shed");
        let queue_depth = service.obs().gauge("server.queue_depth");
        let limiter_shed = service.obs().counter("server.limiter.shed");
        let limiter_limit = service.obs().gauge("server.limiter.limit");
        let limiter_in_flight = service.obs().gauge("server.limiter.in_flight");
        let limiter = AimdLimiter::default_sized();
        limiter_limit.set(limiter.limit());
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_cap.max(1)),
            service,
            shutdown: AtomicBool::new(false),
            net_faults,
            responses: AtomicU64::new(0),
            shed,
            queue_depth,
            limiter,
            limiter_shed,
            limiter_limit,
            limiter_in_flight,
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
        }
        for _ in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers shutdown as if a `shutdown` request had arrived: stop
    /// accepting, drain queued connections, stop the workers.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }

    /// Waits for the daemon to finish (after a shutdown trigger), then
    /// checkpoints the profile database so a graceful exit leaves no
    /// redo work for the next startup.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        self.shared.service.checkpoint();
    }

    /// Access to the in-process service (tests, direct callers).
    pub fn service(&self) -> &Service {
        &self.shared.service
    }

    /// Convenience: trigger shutdown and wait.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    // Close the queue: workers drain the backlog and stop. Wake the
    // acceptor (blocked in accept) with a throwaway connection.
    shared.queue.close();
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Accept errors are transient (EMFILE, aborted handshakes);
            // only a shutdown ends the loop below.
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connection (or a late client) is dropped
        }
        let _ = stream.set_nodelay(true); // small-frame ping-pong protocol
        if let Err(stream) = shared.queue.try_push(stream) {
            // Backpressure: answer `busy` with a retry-after hint on the
            // acceptor thread (cheap) and close.
            shared.shed.inc();
            let mut stream = stream;
            let resp = Response::busy("connection queue full, retry later", BUSY_RETRY_AFTER_MS);
            let _ = write_frame(&mut stream, &resp.to_bytes());
        } else {
            shared.queue_depth.set(shared.queue.len() as u64);
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        serve_connection(stream, shared);
    }
}

/// Serves one connection to EOF (or protocol breakdown). Each request is
/// handled under `catch_unwind` via the reproduction's panic-isolating
/// map, so a handler bug answers `err panic` and the daemon lives on.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // client done
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Garbage frame (oversized, runt, bad version, checksum
                // failure): answer with a typed error, then hang up —
                // the stream position is untrustworthy after this.
                let resp = Response::err(ErrorKind::Proto, e.to_string());
                let _ = write_frame(&mut stream, &resp.to_bytes());
                return;
            }
            Err(_) => return, // torn connection
        };
        let (meta, req) = match decode_request(&payload) {
            Ok(pair) => pair,
            Err(msg) => {
                let resp = Response::err(ErrorKind::Proto, msg);
                if write_frame(&mut stream, &resp.to_bytes()).is_err() {
                    return;
                }
                continue;
            }
        };
        if matches!(req, Request::Shutdown) {
            let resp = Response::Ok("shutting down\n".to_string());
            let _ = write_frame(&mut stream, &resp.to_bytes());
            if let Ok(addr) = stream.local_addr() {
                trigger_shutdown(shared, addr);
            }
            return;
        }
        // AIMD admission: a request over the adaptive in-flight cost
        // ceiling is shed here — a cheap typed refusal at the door
        // instead of a queue-then-timeout collapse.
        let cost = cost_of(&req);
        if !shared.limiter.try_acquire(cost) {
            shared.limiter_shed.inc();
            let resp = Response::busy("admission limit reached, retry later", BUSY_RETRY_AFTER_MS);
            if !send_response(&mut stream, shared, &resp) {
                return;
            }
            continue;
        }
        shared.limiter_in_flight.set(shared.limiter.in_flight());
        let mut results = parallel_map_isolated(std::slice::from_ref(&req), 1, |_, r| {
            shared.service.handle_meta(&meta, r)
        });
        let resp = match results.pop() {
            Some(Ok(resp)) => resp,
            Some(Err(failure)) => Response::err(
                ErrorKind::Panic,
                format!("request handler panicked: {}", failure.message),
            ),
            None => Response::err(ErrorKind::Panic, "request handler vanished"),
        };
        // A VM abort under an explicit deadline is a deadline miss —
        // the overload signal that cuts the ceiling multiplicatively.
        // Everything else (ok or an unrelated typed error) raises it
        // additively.
        let completion = match &resp {
            Response::Err {
                kind: ErrorKind::Vm,
                ..
            } if meta.deadline_fuel.is_some() => Completion::Overload,
            _ => Completion::Done,
        };
        shared.limiter.release(cost, completion);
        shared.limiter_limit.set(shared.limiter.limit());
        if !send_response(&mut stream, shared, &resp) {
            return;
        }
    }
}

/// Writes one response, applying any injected network faults. Returns
/// false when the connection should be dropped (fault fired or write
/// failed).
fn send_response(stream: &mut TcpStream, shared: &Shared, resp: &Response) -> bool {
    let n = shared.responses.fetch_add(1, Ordering::SeqCst) + 1;
    let faults = shared.net_faults;
    if let Some(ms) = faults.stall_ms {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    if faults.drop_nth == Some(n) {
        // The response vanishes; the client sees a closed connection.
        let _ = stream.shutdown(Shutdown::Both);
        return false;
    }
    if faults.reset_nth == Some(n) {
        let _ = stream.shutdown(Shutdown::Both);
        return false;
    }
    if faults.trunc_nth == Some(n) {
        // Half a frame, then close: the client's frame checksum (or the
        // short read itself) must catch this.
        if let Ok(frame) = encode_frame(&resp.to_bytes()) {
            let _ = stream.write_all(&frame[..frame.len() / 2]);
            let _ = stream.flush();
        }
        let _ = stream.shutdown(Shutdown::Both);
        return false;
    }
    write_frame(stream, &resp.to_bytes()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn tmp_config(tag: &str) -> ServerConfig {
        let root =
            std::env::temp_dir().join(format!("stride-server-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        ServerConfig::loopback(ServiceConfig::new(root))
    }

    #[test]
    fn starts_serves_and_shuts_down() {
        let cfg = tmp_config("basic");
        let root = cfg.service.db_root.clone();
        let server = Server::start(cfg).unwrap();
        let addr = server.addr();
        let mut client = Client::connect(addr).unwrap();
        let resp = client.call(&Request::Stats).unwrap();
        assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
        let resp = client.call(&Request::Shutdown).unwrap();
        assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
        server.join();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn protocol_garbage_gets_typed_error() {
        let cfg = tmp_config("proto");
        let root = cfg.service.db_root.clone();
        let server = Server::start(cfg).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, b"no-such-verb x=1").unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        let resp = Response::from_bytes(&payload).unwrap();
        assert!(
            matches!(
                resp,
                Response::Err {
                    kind: ErrorKind::Proto,
                    ..
                }
            ),
            "{resp:?}"
        );
        drop(stream);
        server.shutdown_and_join();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn busy_when_queue_overflows() {
        let mut cfg = tmp_config("busy");
        let root = cfg.service.db_root.clone();
        cfg.workers = 1;
        cfg.queue_cap = 1;
        let server = Server::start(cfg).unwrap();
        let addr = server.addr();
        // Occupy the single worker with an open connection...
        let hold = TcpStream::connect(addr).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        // ...fill the queue with a second...
        let fill = TcpStream::connect(addr).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        // ...so a third is refused with `busy`.
        let mut refused = TcpStream::connect(addr).unwrap();
        let payload = read_frame(&mut refused).unwrap().unwrap();
        let resp = Response::from_bytes(&payload).unwrap();
        assert!(
            matches!(
                resp,
                Response::Err {
                    kind: ErrorKind::Busy,
                    ..
                }
            ),
            "{resp:?}"
        );
        // Close both held connections before joining: a worker that pops
        // one during the drain would otherwise block on it forever.
        drop(hold);
        drop(fill);
        server.shutdown_and_join();
        let _ = std::fs::remove_dir_all(root);
    }
}
