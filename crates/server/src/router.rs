//! The shard router: a thin daemon speaking wire protocol v2 on both
//! sides. Every profile key `(workload, module-hash)` is owned by one
//! shard per [`stride_profdb::ShardMap`]; the router forwards each
//! request to the owning shard's replicas and composes fan-out verbs
//! (`stats`, `gc`, `shutdown`) across the whole cluster.
//!
//! # Replication
//!
//! A `merge-profile` arriving at the router is converted into a
//! [`stride_profdb::repl`] delta — the *pre-merge* entry plus its
//! idempotency id — and sent as a `sync-delta` batch to **every**
//! replica of the owning shard. The merge is acknowledged once at least
//! one replica applied it durably; replicas the delivery missed get the
//! delta spooled to their durable hint log, drained in order before
//! that replica's next delivery. Delivery is therefore at-least-once in
//! any order — exactly what the store's delivery-order-independent
//! delta merge absorbs into byte-identical convergence.
//!
//! # Self-healing
//!
//! The router heals the cluster without operator verbs, on a *logical*
//! clock (handled-request seqnos — wall time never drives a decision):
//!
//! * **Failure detection** ([`crate::detector`]): every
//!   [`RouterConfig::probe_every`]-th handled request runs a `ping`
//!   pass over all replicas; seeded-deterministic miss thresholds walk
//!   alive → suspect → dead. Transport failures during normal
//!   forwarding count as misses too, so detection is no slower than
//!   the probe cadence. The health table is persisted beside the hint
//!   spool, so a router restart resumes mid-suspicion.
//! * **Hinted handoff** ([`crate::hints`]): deltas owed to a dead (or
//!   just-missed) replica are spooled to a checksummed per-replica WAL
//!   chain and drained in order on revival. At capacity the merge is
//!   refused *whole* with a typed `handoff-full` — before any replica
//!   applies it — so an acknowledged merge can never lose a replica
//!   silently (the old in-memory lag queue dropped its oldest entry).
//! * **Anti-entropy repair**: replicas of a shard exchange per-key
//!   digest tables; on divergence each live replica's retained
//!   pre-merge delta window is cross-sent to its siblings (req-id
//!   dedup absorbs the overlap). Runs periodically on the probe clock,
//!   on every revival, and on the `repair` verb.
//! * **Revival**: when a dead replica answers a probe again (a crashed
//!   daemon restarted on its old port), the router re-teaches it every
//!   module it owns, drains its hint log, and runs a repair round —
//!   the exact routine `route-update` performs for an address move.
//!
//! # Degradation
//!
//! A shard with no reachable replica answers `err unavailable shard=K
//! retry-after=MS` *for its key range only*; requests owned by live
//! shards keep succeeding. Overload is shed at the door by an AIMD
//! admission limiter ([`crate::limiter`]) with typed `busy` errors.

use crate::client::{Client, RetryPolicy};
use crate::hints::HintLog;
use crate::limiter::{cost_of, AimdLimiter, Completion};
use crate::proto::{
    decode_request, read_frame, write_frame, ErrorKind, Request, RequestMeta, Response,
};
use crate::queue::BoundedQueue;
use crate::{detector::FailureDetector, detector::ProbeOutcome};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use stride_core::{Counter, Gauge, Registry};
use stride_profdb::{
    decode_delta_batch, decode_digest_table, encode_delta_batch, DeltaRecord, ProfileEntry,
    ShardMap, SHARD_MAP_VERSION,
};

/// Retry-after hint on `unavailable` responses, in milliseconds.
pub const UNAVAILABLE_RETRY_AFTER_MS: u64 = 200;

/// Default ceiling on one replica's durable hint spool. Unlike the old
/// in-memory lag queue, hitting it refuses new merges (`handoff-full`)
/// instead of silently dropping the oldest delta.
pub const HINT_CAP_DEFAULT: usize = 4096;

/// Default probe cadence: one failure-detector pass per this many
/// handled requests (a logical clock — wall time never drives it).
pub const PROBE_EVERY_DEFAULT: u64 = 8;

/// Anti-entropy cadence: one repair round per this many probe passes.
const REPAIR_EVERY_PASSES: u64 = 4;

/// Health-table snapshot file, beside the hint spool.
const HEALTH_FILE: &str = "health.txt";

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Replica addresses per shard: `shards[k]` lists shard `k`'s
    /// replicas.
    pub shards: Vec<Vec<String>>,
    /// Worker threads serving client connections.
    pub workers: usize,
    /// Retry policy for backend calls (kept short: the router's own
    /// callers have retry loops too).
    pub backend_retry: RetryPolicy,
    /// Root directory for the per-replica hint spools and the health
    /// snapshot. `None` uses a fresh per-process temp directory (tests);
    /// deployments pass a durable path so spooled deltas and suspicion
    /// counts survive a router restart.
    pub hint_root: Option<PathBuf>,
    /// Per-replica hint-spool capacity, in hints.
    pub hint_cap: usize,
    /// Probe cadence in handled requests; 0 disables probing.
    pub probe_every: u64,
    /// Failure-detector seed (derives per-replica miss thresholds).
    pub detector_seed: u64,
}

impl RouterConfig {
    /// Loopback router over the given shard topology with a fail-fast
    /// backend policy.
    pub fn loopback(shards: Vec<Vec<String>>) -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            workers: 4,
            backend_retry: RetryPolicy {
                max_attempts: 2,
                base_delay_ms: 10,
                max_delay_ms: 100,
                jitter_seed: 0,
            },
            hint_root: None,
            hint_cap: HINT_CAP_DEFAULT,
            probe_every: PROBE_EVERY_DEFAULT,
            detector_seed: 0x7007_c0de,
        }
    }
}

/// One backend replica: its (mutable — `route-update`) address, a lazy
/// connection, and the durable hint spool of deliveries it has missed.
struct Replica {
    addr: Mutex<String>,
    client: Mutex<Option<Client>>,
    hints: Mutex<HintLog>,
}

impl Replica {
    fn addr(&self) -> String {
        self.addr
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// Router state shared by all worker threads.
pub struct Router {
    map: ShardMap,
    shards: Vec<Vec<Replica>>,
    /// Modules seen at this router: workload → (hash, IR text). The text
    /// is kept so a restarted replica can be re-taught its modules.
    modules: Mutex<HashMap<String, (u64, String)>>,
    obs: Arc<Registry>,
    forwarded: Counter,
    shed_unavailable: Counter,
    retries: Counter,
    hints_spooled: Counter,
    hints_drained: Counter,
    handoff_refused: Counter,
    probes: Counter,
    failovers: Counter,
    revivals: Counter,
    repair_rounds: Counter,
    repair_resent: Counter,
    limiter_shed: Counter,
    limiter_limit: Gauge,
    policy: RetryPolicy,
    /// Router-generated idempotency ids for merges arriving without one.
    id_seq: AtomicU64,
    /// Handled-request seqno: the logical clock probing runs on.
    req_seq: AtomicU64,
    /// Completed probe passes (the repair clock).
    probe_passes: AtomicU64,
    /// Guards against overlapping probe passes from concurrent workers.
    probing: AtomicBool,
    detector: Mutex<FailureDetector>,
    probe_every: u64,
    health_path: PathBuf,
    limiter: AimdLimiter,
    shutdown: AtomicBool,
}

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Distinct per-process hint roots for routers started without one
/// (multiple in-process routers in one test binary must not collide).
fn scratch_hint_root() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("strided-router-hints-{}-{n}", std::process::id()))
}

impl Router {
    /// Builds the router over a shard topology, opening (and replaying)
    /// the per-replica hint spools and restoring the health table.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when a hint spool cannot be opened.
    pub fn new(config: &RouterConfig) -> io::Result<Router> {
        let obs = Arc::new(Registry::new());
        let map = ShardMap::new(config.shards.len() as u32);
        let hint_root = config.hint_root.clone().unwrap_or_else(scratch_hint_root);
        let topo: Vec<usize> = config.shards.iter().map(Vec::len).collect();
        let mut shards: Vec<Vec<Replica>> = Vec::with_capacity(config.shards.len());
        for (k, replicas) in config.shards.iter().enumerate() {
            let mut row = Vec::with_capacity(replicas.len());
            for (r, addr) in replicas.iter().enumerate() {
                let spool = HintLog::open(&hint_root.join(format!("s{k}r{r}")), config.hint_cap)
                    .map_err(|e| io::Error::other(format!("hint spool s{k}r{r}: {e}")))?;
                row.push(Replica {
                    addr: Mutex::new(addr.clone()),
                    client: Mutex::new(None),
                    hints: Mutex::new(spool),
                });
            }
            shards.push(row);
        }
        let health_path = hint_root.join(HEALTH_FILE);
        // Resume mid-suspicion from the persisted health table; a
        // missing or unparsable snapshot starts everyone alive.
        let detector = std::fs::read_to_string(&health_path)
            .ok()
            .and_then(|text| FailureDetector::restore_text(config.detector_seed, &topo, &text).ok())
            .unwrap_or_else(|| FailureDetector::new(config.detector_seed, &topo));
        Ok(Router {
            map,
            shards,
            modules: Mutex::new(HashMap::new()),
            forwarded: obs.counter("router.forwarded"),
            shed_unavailable: obs.counter("router.shed_unavailable"),
            retries: obs.counter("client.retries"),
            hints_spooled: obs.counter("router.hints_spooled"),
            hints_drained: obs.counter("router.hints_drained"),
            handoff_refused: obs.counter("router.handoff_refused"),
            probes: obs.counter("router.probes"),
            failovers: obs.counter("router.failovers"),
            revivals: obs.counter("router.revivals"),
            repair_rounds: obs.counter("router.repair_rounds"),
            repair_resent: obs.counter("router.repair_resent"),
            limiter_shed: obs.counter("router.limiter.shed"),
            limiter_limit: obs.gauge("router.limiter.limit"),
            obs,
            policy: config.backend_retry,
            id_seq: AtomicU64::new(0x7007_c0de),
            req_seq: AtomicU64::new(0),
            probe_passes: AtomicU64::new(0),
            probing: AtomicBool::new(false),
            detector: Mutex::new(detector),
            probe_every: config.probe_every,
            health_path,
            limiter: AimdLimiter::default_sized(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The router's metrics registry.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The router's admission limiter (serve loop, tests).
    pub fn limiter(&self) -> &AimdLimiter {
        &self.limiter
    }

    fn detector(&self) -> std::sync::MutexGuard<'_, FailureDetector> {
        self.detector.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn is_dead(&self, shard: usize, replica: usize) -> bool {
        self.detector().is_dead(shard, replica)
    }

    /// Best-effort persist of the health table so a restarted router
    /// resumes mid-suspicion. Corruption is tolerated: restore rejects
    /// garbage and starts everyone alive.
    fn persist_health(&self) {
        let text = self.detector().snapshot_text();
        let _ = std::fs::write(&self.health_path, text);
    }

    /// One call to one replica over its cached connection (connecting
    /// lazily, reconnecting after `route-update`).
    fn call_replica(
        &self,
        replica: &Replica,
        deadline_fuel: Option<u64>,
        req: &Request,
    ) -> io::Result<Response> {
        let mut slot = replica
            .client
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            let mut client = Client::connect_with(replica.addr(), self.policy)?;
            client.set_retry_counter(Some(self.retries.clone()));
            *slot = Some(client);
        }
        let Some(client) = slot.as_mut() else {
            return Err(io::Error::other("no backend connection"));
        };
        client.set_deadline_fuel(deadline_fuel);
        let result = client.call(req);
        if result.is_err() {
            // Poisoned transport: reconnect fresh on the next call.
            *slot = None;
        }
        result
    }

    /// Feeds one transport failure to the failure detector and acts on
    /// the resulting state edge (a miss observed during forwarding is
    /// as good as a missed probe).
    fn note_miss(&self, shard: usize, replica: usize) {
        let outcome = self.detector().probe_missed(shard, replica);
        self.act_on(shard, replica, outcome);
    }

    fn act_on(&self, shard: usize, replica: usize, outcome: ProbeOutcome) {
        match outcome {
            ProbeOutcome::Unchanged => {}
            ProbeOutcome::Suspected => self.persist_health(),
            ProbeOutcome::Died => {
                self.failovers.inc();
                self.persist_health();
            }
            ProbeOutcome::Revived => {
                self.revivals.inc();
                self.persist_health();
                self.revive(shard, replica);
            }
        }
    }

    /// One failure-detector pass: ping every replica (dead ones too —
    /// that is how revival is noticed), walk the state machine, and
    /// every few passes run an anti-entropy repair round.
    fn probe_all(&self) {
        if self.probing.swap(true, Ordering::SeqCst) {
            return; // a sibling worker is mid-pass
        }
        for k in 0..self.shards.len() {
            for r in 0..self.shards[k].len() {
                self.probes.inc();
                let up = matches!(
                    self.call_replica(&self.shards[k][r], None, &Request::Ping),
                    Ok(Response::Ok(_))
                );
                let outcome = if up {
                    self.detector().probe_ok(k, r)
                } else {
                    self.detector().probe_missed(k, r)
                };
                self.act_on(k, r, outcome);
            }
        }
        let pass = self.probe_passes.fetch_add(1, Ordering::Relaxed) + 1;
        if pass.is_multiple_of(REPAIR_EVERY_PASSES) {
            self.repair_all();
        }
        self.probing.store(false, Ordering::SeqCst);
    }

    /// The revival routine — also the `route-update` routine: re-teach
    /// the replica every module its shard owns (a restarted daemon is
    /// module-less), drain its hint spool in order, then run a repair
    /// round so anything the hints could not carry re-converges.
    fn revive(&self, shard: usize, replica_idx: usize) {
        let replica = &self.shards[shard][replica_idx];
        let modules = self.modules.lock().unwrap_or_else(PoisonError::into_inner);
        let teach: Vec<Request> = modules
            .iter()
            .filter(|(w, (h, _))| self.map.shard_of(w, *h) as usize == shard)
            .map(|(w, (_, text))| Request::SubmitModule {
                workload: w.clone(),
                text: text.clone(),
            })
            .collect();
        drop(modules);
        for req in &teach {
            let _ = self.call_replica(replica, None, req);
        }
        self.drain_hints(replica);
        let (_, resent) = self.repair_shard(shard);
        self.repair_rounds.inc();
        self.repair_resent.add(resent);
    }

    /// Drains a replica's hint spool in order; stops on the first
    /// transport failure (the hint stays front-of-queue). Returns true
    /// when the spool emptied. A typed refusal is popped too: it cannot
    /// succeed later either, and anti-entropy re-converges the key.
    fn drain_hints(&self, replica: &Replica) -> bool {
        loop {
            let hints = replica.hints.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(hint) = hints.front().cloned() else {
                return true;
            };
            drop(hints);
            let req = Request::SyncDelta {
                batch_text: encode_delta_batch(&[DeltaRecord {
                    req_id: hint.req_id,
                    entry_text: hint.entry_text,
                }]),
            };
            match self.call_replica(replica, None, &req) {
                Ok(_) => {
                    let mut hints = replica.hints.lock().unwrap_or_else(PoisonError::into_inner);
                    let _ = hints.pop_delivered();
                    self.hints_drained.inc();
                }
                Err(_) => return false,
            }
        }
    }

    /// Durably spools one delta for a replica the delivery missed.
    /// Capacity was pre-checked by the caller, so a refusal here (a
    /// race) surfaces as `handoff-full` upstream.
    fn spool_hint(&self, replica: &Replica, req_id: u64, entry_text: &str) -> bool {
        let mut hints = replica.hints.lock().unwrap_or_else(PoisonError::into_inner);
        match hints.spool(req_id, entry_text) {
            Ok(()) => {
                self.hints_spooled.inc();
                true
            }
            Err(_) => false,
        }
    }

    /// Per-replica spooled-hint depth plus health state (quiesce probe;
    /// the `lag` line shape predates hinted handoff and is kept for its
    /// scripted consumers).
    fn lag_lines(&self) -> String {
        let mut out = String::new();
        for (k, replicas) in self.shards.iter().enumerate() {
            for (r, replica) in replicas.iter().enumerate() {
                let queued = replica
                    .hints
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len();
                let _ = writeln!(out, "lag shard={k} replica={r} queued={queued}");
            }
        }
        let detector = self.detector();
        for (k, replicas) in self.shards.iter().enumerate() {
            for r in 0..replicas.len() {
                let _ = writeln!(
                    out,
                    "health shard={k} replica={r} state={}",
                    detector.state(k, r).label()
                );
            }
        }
        out
    }

    fn shard_replicas(&self, shard: u32) -> &[Replica] {
        &self.shards[shard as usize]
    }

    /// Handles one client request at the router. Every handled request
    /// ticks the logical probe clock.
    pub fn handle(&self, meta: &RequestMeta, req: &Request) -> Response {
        let seq = self.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if self.probe_every > 0 && seq.is_multiple_of(self.probe_every) {
            self.probe_all();
        }
        match req {
            Request::SubmitModule { workload, text } => self.submit(workload, text),
            Request::MergeProfile { entry_text } => self.merge(meta, entry_text),
            Request::Profile { workload, .. }
            | Request::Classify { workload, .. }
            | Request::Prefetch { workload, .. }
            | Request::GetProfile { workload } => self.route_by_workload(workload, meta, req),
            Request::SyncDelta { .. } => Response::err(
                ErrorKind::Malformed,
                "sync-delta is replica-to-replica; submit merges via merge-profile",
            ),
            Request::Digest | Request::PullDeltas => Response::err(
                ErrorKind::Malformed,
                "digest/pull-deltas are shard-daemon verbs; ask the router for `repair`",
            ),
            Request::Ping => Response::Ok("pong\n".to_string()),
            Request::Health => Response::Ok(self.health_body()),
            Request::Repair => Response::Ok(self.repair_body()),
            Request::Stats => Response::Ok(self.fan_out_body(&Request::Stats)),
            Request::Gc => Response::Ok(self.fan_out_body(&Request::Gc)),
            Request::RouteUpdate {
                shard,
                replica,
                addr,
            } => self.route_update(*shard, *replica, addr),
            // The server loop intercepts Shutdown; answer direct callers.
            Request::Shutdown => Response::Ok("shutting down\n".to_string()),
        }
    }

    /// Registers the module locally (learning the key hash) and forwards
    /// the submission to every live replica of the owning shard. Dead
    /// replicas are skipped: the revival routine re-teaches every module
    /// from the router's copy.
    fn submit(&self, workload: &str, text: &str) -> Response {
        let module = match stride_ir::module_from_string(text) {
            Ok(m) => m,
            Err(e) => return Response::err(ErrorKind::Parse, e.render(text)),
        };
        let hash = stride_profdb::module_hash(&module);
        self.modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(workload.to_string(), (hash, text.to_string()));
        let shard = self.map.shard_of(workload, hash);
        let req = Request::SubmitModule {
            workload: workload.to_string(),
            text: text.to_string(),
        };
        let mut acked = None;
        for (r, replica) in self.shard_replicas(shard).iter().enumerate() {
            if self.is_dead(shard as usize, r) {
                continue;
            }
            self.drain_hints(replica);
            match self.call_replica(replica, None, &req) {
                Ok(Response::Ok(body)) => acked = acked.or(Some(body)),
                Ok(resp @ Response::Err { .. }) => return resp,
                Err(_) => self.note_miss(shard as usize, r),
            }
        }
        match acked {
            Some(body) => {
                self.forwarded.inc();
                Response::Ok(body)
            }
            None => self.unavailable(shard, "no live replica accepted the module"),
        }
    }

    /// Converts a merge into a replication delta and delivers it to all
    /// replicas of the owning shard, acknowledging on the first durable
    /// apply. Replicas the delivery misses get the delta spooled to
    /// their hint log — but only if *every* replica's spool has room,
    /// checked before any delivery, so a `handoff-full` refusal means
    /// the merge was applied nowhere and the client's retry is clean.
    fn merge(&self, meta: &RequestMeta, entry_text: &str) -> Response {
        let entry = match ProfileEntry::from_text(entry_text) {
            Ok(e) => e,
            Err(e) => return Response::err(ErrorKind::from(&e), e.to_string()),
        };
        let shard = self.map.shard_of(&entry.workload, entry.module_hash);
        for (r, replica) in self.shard_replicas(shard).iter().enumerate() {
            let full = replica
                .hints
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_full();
            if full {
                self.handoff_refused.inc();
                return Response::handoff_full(
                    shard,
                    UNAVAILABLE_RETRY_AFTER_MS,
                    format!("replica {r} hint spool at capacity; merge refused whole, retry later"),
                );
            }
        }
        let req_id = if meta.req_id != 0 {
            meta.req_id
        } else {
            // Id-less client: stamp a router id so replica dedup still
            // sees one identity for this merge across all replicas.
            loop {
                let id = splitmix64_mix(
                    self.id_seq
                        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed),
                );
                if id != 0 {
                    break id;
                }
            }
        };
        let batch = encode_delta_batch(&[DeltaRecord {
            req_id,
            entry_text: entry_text.to_string(),
        }]);
        let req = Request::SyncDelta {
            batch_text: batch.clone(),
        };
        let mut acked = None;
        for (r, replica) in self.shard_replicas(shard).iter().enumerate() {
            if self.is_dead(shard as usize, r) {
                self.spool_hint(replica, req_id, entry_text);
                continue;
            }
            // Ordered delivery per replica: missed deliveries go first.
            if !self.drain_hints(replica) {
                self.spool_hint(replica, req_id, entry_text);
                self.note_miss(shard as usize, r);
                continue;
            }
            match self.call_replica(replica, None, &req) {
                Ok(Response::Ok(body)) => acked = acked.or(Some(body)),
                Ok(resp @ Response::Err { .. }) => return resp,
                Err(_) => {
                    self.spool_hint(replica, req_id, entry_text);
                    self.note_miss(shard as usize, r);
                }
            }
        }
        match acked {
            Some(body) => {
                self.forwarded.inc();
                Response::Ok(body)
            }
            None => self.unavailable(shard, "no live replica applied the merge"),
        }
    }

    /// Routes a read/compute request to the first live replica of the
    /// owning shard.
    fn route_by_workload(&self, workload: &str, meta: &RequestMeta, req: &Request) -> Response {
        let hash = {
            let modules = self.modules.lock().unwrap_or_else(PoisonError::into_inner);
            match modules.get(workload) {
                Some(&(hash, _)) => hash,
                None => {
                    return Response::err(
                        ErrorKind::NotFound,
                        format!("no module submitted for workload `{workload}` via this router"),
                    )
                }
            }
        };
        let shard = self.map.shard_of(workload, hash);
        for (r, replica) in self.shard_replicas(shard).iter().enumerate() {
            if self.is_dead(shard as usize, r) {
                continue;
            }
            self.drain_hints(replica);
            match self.call_replica(replica, meta.deadline_fuel, req) {
                Ok(resp) => {
                    self.forwarded.inc();
                    return resp;
                }
                Err(_) => {
                    self.note_miss(shard as usize, r);
                    continue;
                }
            }
        }
        self.unavailable(shard, format!("no live replica for `{workload}`"))
    }

    /// The failure detector's table, for operators and tests.
    fn health_body(&self) -> String {
        let mut out = format!(
            "# router health v1\nprobe-every {}\nhandled {}\n",
            self.probe_every,
            self.req_seq.load(Ordering::Relaxed)
        );
        out.push_str(&self.detector().snapshot_text());
        out
    }

    /// One explicit anti-entropy round across every shard.
    fn repair_body(&self) -> String {
        let mut out = String::new();
        for k in 0..self.shards.len() {
            let (divergent, resent) = self.repair_shard(k);
            self.repair_rounds.inc();
            self.repair_resent.add(resent);
            let _ = writeln!(
                out,
                "repair shard={k} divergent={divergent} resent={resent}"
            );
        }
        out
    }

    fn repair_all(&self) {
        for k in 0..self.shards.len() {
            let (_, resent) = self.repair_shard(k);
            self.repair_rounds.inc();
            self.repair_resent.add(resent);
        }
    }

    /// One anti-entropy round for one shard: diff the live replicas'
    /// per-key digest tables; on divergence cross-send every live
    /// replica's retained pre-merge delta window to its siblings
    /// (req-id dedup absorbs the overlap, CRDT merge makes the union
    /// byte-identical). Returns `(divergent, deltas re-sent)`.
    fn repair_shard(&self, shard: usize) -> (bool, u64) {
        let replicas = &self.shards[shard];
        let mut tables = Vec::new();
        for (r, replica) in replicas.iter().enumerate() {
            if self.is_dead(shard, r) {
                continue;
            }
            if let Ok(Response::Ok(body)) = self.call_replica(replica, None, &Request::Digest) {
                if let Ok(table) = decode_digest_table(&body) {
                    tables.push((r, table));
                }
            }
        }
        let divergent = tables.windows(2).any(|w| w[0].1 != w[1].1);
        if !divergent {
            return (false, 0);
        }
        let mut resent = 0u64;
        for &(r, _) in &tables {
            let Ok(Response::Ok(batch)) =
                self.call_replica(&replicas[r], None, &Request::PullDeltas)
            else {
                continue;
            };
            let Ok(deltas) = decode_delta_batch(&batch) else {
                continue;
            };
            if deltas.is_empty() {
                continue;
            }
            let req = Request::SyncDelta { batch_text: batch };
            for &(r2, _) in &tables {
                if r2 == r {
                    continue;
                }
                if let Ok(Response::Ok(_)) = self.call_replica(&replicas[r2], None, &req) {
                    resent += deltas.len() as u64;
                }
            }
        }
        (true, resent)
    }

    /// Fans a verb out to every replica of every shard, composing the
    /// bodies under `== shard K replica R addr A ==` section headers.
    /// The leading `== router ==` section carries the router's own
    /// counters, per-replica hint depths, and health states.
    fn fan_out_body(&self, req: &Request) -> String {
        let mut out = format!(
            "== router ==\nshards {}\nshard-map-version {SHARD_MAP_VERSION}\n",
            self.shards.len()
        );
        out.push_str(&self.lag_lines());
        out.push_str(&self.obs.snapshot_text());
        for (k, replicas) in self.shards.iter().enumerate() {
            for (r, replica) in replicas.iter().enumerate() {
                if !self.is_dead(k, r) {
                    self.drain_hints(replica);
                }
                let addr = replica.addr();
                let _ = writeln!(out, "== shard {k} replica {r} addr {addr} ==");
                match self.call_replica(replica, None, req) {
                    Ok(Response::Ok(body)) => out.push_str(&body),
                    Ok(Response::Err { kind, message, .. }) => {
                        let _ = writeln!(out, "err {kind}: {message}");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "unreachable: {e}");
                    }
                }
            }
        }
        out
    }

    /// Re-points a replica at a new address (a genuine move — same-port
    /// restarts heal without this verb) and runs the revival routine:
    /// re-teach modules, drain hints, repair.
    fn route_update(&self, shard: u32, replica_idx: u32, addr: &str) -> Response {
        let Some(replica) = self
            .shards
            .get(shard as usize)
            .and_then(|rs| rs.get(replica_idx as usize))
        else {
            return Response::err(
                ErrorKind::Malformed,
                format!("no such replica: shard {shard} replica {replica_idx}"),
            );
        };
        *replica.addr.lock().unwrap_or_else(PoisonError::into_inner) = addr.to_string();
        *replica
            .client
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        // The operator asserts the replica is reachable there; the next
        // probe pass corrects the table if not.
        let outcome = self
            .detector()
            .probe_ok(shard as usize, replica_idx as usize);
        if outcome == ProbeOutcome::Revived {
            self.revivals.inc();
        }
        self.persist_health();
        self.revive(shard as usize, replica_idx as usize);
        Response::Ok(format!(
            "routed shard={shard} replica={replica_idx} addr={addr}\n"
        ))
    }

    fn unavailable(&self, shard: u32, message: impl Into<String>) -> Response {
        self.shed_unavailable.inc();
        Response::unavailable(shard, UNAVAILABLE_RETRY_AFTER_MS, message)
    }

    /// Best-effort shutdown fan-out to every replica.
    fn shutdown_backends(&self) {
        for replicas in &self.shards {
            for replica in replicas {
                let _ = self.call_replica(replica, None, &Request::Shutdown);
            }
        }
    }
}

struct Shared {
    queue: BoundedQueue<TcpStream>,
    router: Router,
}

/// A running router daemon (same lifecycle contract as
/// [`crate::Server`]).
pub struct RouterServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterServer {
    /// Binds, spawns the acceptor and workers, returns immediately.
    ///
    /// # Errors
    ///
    /// Socket or hint-spool failures.
    pub fn start(config: RouterConfig) -> io::Result<RouterServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let router = Router::new(&config)?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(64),
            router,
        });
        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
        }
        for _ in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        Ok(RouterServer {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router state (tests, in-process callers).
    pub fn router(&self) -> &Router {
        &self.shared.router
    }

    /// Stops accepting and drains workers (backends are left running;
    /// a client `shutdown` request also fans out to them).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }

    /// Waits for the router to finish.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Convenience: trigger shutdown and wait.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.router.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.router.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.router.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Err(stream) = shared.queue.try_push(stream) {
            let mut stream = stream;
            let resp = Response::busy(
                "router connection queue full, retry later",
                crate::server::BUSY_RETRY_AFTER_MS,
            );
            let _ = write_frame(&mut stream, &resp.to_bytes());
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        serve_connection(stream, shared);
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let resp = Response::err(ErrorKind::Proto, e.to_string());
                let _ = write_frame(&mut stream, &resp.to_bytes());
                return;
            }
            Err(_) => return,
        };
        let (meta, req) = match decode_request(&payload) {
            Ok(pair) => pair,
            Err(msg) => {
                let resp = Response::err(ErrorKind::Proto, msg);
                if write_frame(&mut stream, &resp.to_bytes()).is_err() {
                    return;
                }
                continue;
            }
        };
        if matches!(req, Request::Shutdown) {
            shared.router.shutdown_backends();
            let resp = Response::Ok("shutting down\n".to_string());
            let _ = write_frame(&mut stream, &resp.to_bytes());
            if let Ok(addr) = stream.local_addr() {
                trigger_shutdown(shared, addr);
            }
            return;
        }
        // Adaptive admission: shed over-ceiling work at the door with a
        // typed busy instead of letting backend queues collapse.
        let router = &shared.router;
        let cost = cost_of(&req);
        if !router.limiter.try_acquire(cost) {
            router.limiter_shed.inc();
            let resp = Response::busy(
                "router admission limit reached, retry later",
                crate::server::BUSY_RETRY_AFTER_MS,
            );
            if write_frame(&mut stream, &resp.to_bytes()).is_err() {
                return;
            }
            continue;
        }
        let resp = router.handle(&meta, &req);
        // Load signals cut the ceiling: a backend busy, a hint spool at
        // capacity, or a deadline-missed VM abort. Everything else —
        // including unavailable (a liveness problem, not load) — raises.
        let completion = match &resp {
            Response::Err {
                kind: ErrorKind::Busy | ErrorKind::HandoffFull,
                ..
            } => Completion::Overload,
            Response::Err {
                kind: ErrorKind::Vm,
                ..
            } if meta.deadline_fuel.is_some() => Completion::Overload,
            _ => Completion::Done,
        };
        router.limiter.release(cost, completion);
        router.limiter_limit.set(router.limiter.limit());
        if write_frame(&mut stream, &resp.to_bytes()).is_err() {
            return;
        }
    }
}
