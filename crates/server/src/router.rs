//! The shard router: a thin daemon speaking wire protocol v2 on both
//! sides. Every profile key `(workload, module-hash)` is owned by one
//! shard per [`stride_profdb::ShardMap`]; the router forwards each
//! request to the owning shard's replicas and composes fan-out verbs
//! (`stats`, `gc`, `shutdown`) across the whole cluster.
//!
//! # Replication
//!
//! A `merge-profile` arriving at the router is converted into a
//! [`stride_profdb::repl`] delta — the *pre-merge* entry plus its
//! idempotency id — and sent as a `sync-delta` batch to **every**
//! replica of the owning shard. The merge is acknowledged once at least
//! one replica applied it durably; replicas that missed the delivery get
//! the batch queued in a per-replica *lag queue*, drained in order
//! before that replica's next delivery. Delivery is therefore
//! at-least-once in any order — exactly what the store's
//! delivery-order-independent delta merge absorbs into byte-identical
//! convergence.
//!
//! # Degradation
//!
//! A shard with no reachable replica answers `err unavailable shard=K
//! retry-after=MS` *for its key range only*; requests owned by live
//! shards keep succeeding. A crashed replica that restarts on a new
//! port is re-learned via the `route-update` verb, which also requeues
//! every known module submission so the replica can serve staleness
//! checks again.

use crate::client::{Client, RetryPolicy};
use crate::proto::{
    decode_request, read_frame, write_frame, ErrorKind, Request, RequestMeta, Response,
};
use crate::queue::BoundedQueue;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use stride_core::{Counter, Registry};
use stride_profdb::{encode_delta_batch, DeltaRecord, ProfileEntry, ShardMap, SHARD_MAP_VERSION};

/// Retry-after hint on `unavailable` responses, in milliseconds.
pub const UNAVAILABLE_RETRY_AFTER_MS: u64 = 200;

/// Ceiling on one replica's lag queue; beyond it the oldest entries are
/// dropped (counted — a replica that lags this far needs recovery-based
/// catch-up anyway, which WAL replay plus client retries provide).
const LAG_QUEUE_CAP: usize = 4096;

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Replica addresses per shard: `shards[k]` lists shard `k`'s
    /// replicas.
    pub shards: Vec<Vec<String>>,
    /// Worker threads serving client connections.
    pub workers: usize,
    /// Retry policy for backend calls (kept short: the router's own
    /// callers have retry loops too).
    pub backend_retry: RetryPolicy,
}

impl RouterConfig {
    /// Loopback router over the given shard topology with a fail-fast
    /// backend policy.
    pub fn loopback(shards: Vec<Vec<String>>) -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            workers: 4,
            backend_retry: RetryPolicy {
                max_attempts: 2,
                base_delay_ms: 10,
                max_delay_ms: 100,
                jitter_seed: 0,
            },
        }
    }
}

/// One backend replica: its (mutable — `route-update`) address, a lazy
/// connection, and the lag queue of deliveries it has missed.
struct Replica {
    addr: Mutex<String>,
    client: Mutex<Option<Client>>,
    lag: Mutex<VecDeque<Request>>,
}

impl Replica {
    fn new(addr: String) -> Replica {
        Replica {
            addr: Mutex::new(addr),
            client: Mutex::new(None),
            lag: Mutex::new(VecDeque::new()),
        }
    }

    fn addr(&self) -> String {
        self.addr
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// Router state shared by all worker threads.
pub struct Router {
    map: ShardMap,
    shards: Vec<Vec<Replica>>,
    /// Modules seen at this router: workload → (hash, IR text). The text
    /// is kept so a restarted replica can be re-taught its modules.
    modules: Mutex<HashMap<String, (u64, String)>>,
    obs: Arc<Registry>,
    forwarded: Counter,
    shed_unavailable: Counter,
    retries: Counter,
    lag_dropped: Counter,
    policy: RetryPolicy,
    /// Router-generated idempotency ids for merges arriving without one.
    id_seq: AtomicU64,
    shutdown: AtomicBool,
}

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Router {
    /// Builds the router over a shard topology.
    pub fn new(shards: Vec<Vec<String>>, policy: RetryPolicy) -> Router {
        let obs = Arc::new(Registry::new());
        let forwarded = obs.counter("router.forwarded");
        let shed_unavailable = obs.counter("router.shed_unavailable");
        let retries = obs.counter("client.retries");
        let lag_dropped = obs.counter("router.lag_dropped");
        let map = ShardMap::new(shards.len() as u32);
        let shards = shards
            .into_iter()
            .map(|replicas| replicas.into_iter().map(Replica::new).collect())
            .collect();
        Router {
            map,
            shards,
            modules: Mutex::new(HashMap::new()),
            obs,
            forwarded,
            shed_unavailable,
            retries,
            lag_dropped,
            policy,
            id_seq: AtomicU64::new(0x7007_c0de),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The router's metrics registry.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// One call to one replica over its cached connection (connecting
    /// lazily, reconnecting after `route-update`).
    fn call_replica(
        &self,
        replica: &Replica,
        deadline_fuel: Option<u64>,
        req: &Request,
    ) -> io::Result<Response> {
        let mut slot = replica
            .client
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            let mut client = Client::connect_with(replica.addr(), self.policy)?;
            client.set_retry_counter(Some(self.retries.clone()));
            *slot = Some(client);
        }
        let Some(client) = slot.as_mut() else {
            return Err(io::Error::other("no backend connection"));
        };
        client.set_deadline_fuel(deadline_fuel);
        let result = client.call(req);
        if result.is_err() {
            // Poisoned transport: reconnect fresh on the next call.
            *slot = None;
        }
        result
    }

    /// Drains a replica's lag queue in order; stops (requeueing the
    /// failed delivery at the front) on the first failure. Returns true
    /// when the queue emptied.
    fn drain_lag(&self, replica: &Replica) -> bool {
        loop {
            let Some(req) = replica
                .lag
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            else {
                return true;
            };
            match self.call_replica(replica, None, &req) {
                Ok(Response::Ok(_)) => continue,
                // A typed refusal (stale, malformed) cannot succeed
                // later either: drop it rather than wedge the queue.
                Ok(Response::Err { .. }) => continue,
                Err(_) => {
                    replica
                        .lag
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push_front(req);
                    return false;
                }
            }
        }
    }

    fn enqueue_lag(&self, replica: &Replica, req: Request) {
        let mut lag = replica.lag.lock().unwrap_or_else(PoisonError::into_inner);
        while lag.len() >= LAG_QUEUE_CAP {
            lag.pop_front();
            self.lag_dropped.inc();
        }
        lag.push_back(req);
    }

    /// Total queued lag deliveries per shard/replica (quiesce probe).
    fn lag_lines(&self) -> String {
        let mut out = String::new();
        for (k, replicas) in self.shards.iter().enumerate() {
            for (r, replica) in replicas.iter().enumerate() {
                let queued = replica
                    .lag
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len();
                let _ = writeln!(out, "lag shard={k} replica={r} queued={queued}");
            }
        }
        out
    }

    fn shard_replicas(&self, shard: u32) -> &[Replica] {
        &self.shards[shard as usize]
    }

    /// Handles one client request at the router.
    pub fn handle(&self, meta: &RequestMeta, req: &Request) -> Response {
        match req {
            Request::SubmitModule { workload, text } => self.submit(workload, text),
            Request::MergeProfile { entry_text } => self.merge(meta, entry_text),
            Request::Profile { workload, .. }
            | Request::Classify { workload, .. }
            | Request::Prefetch { workload, .. }
            | Request::GetProfile { workload } => self.route_by_workload(workload, meta, req),
            Request::SyncDelta { .. } => Response::err(
                ErrorKind::Malformed,
                "sync-delta is replica-to-replica; submit merges via merge-profile",
            ),
            Request::Stats => Response::Ok(self.fan_out_body(&Request::Stats)),
            Request::Gc => Response::Ok(self.fan_out_body(&Request::Gc)),
            Request::RouteUpdate {
                shard,
                replica,
                addr,
            } => self.route_update(*shard, *replica, addr),
            // The server loop intercepts Shutdown; answer direct callers.
            Request::Shutdown => Response::Ok("shutting down\n".to_string()),
        }
    }

    /// Registers the module locally (learning the key hash) and forwards
    /// the submission to every replica of the owning shard.
    fn submit(&self, workload: &str, text: &str) -> Response {
        let module = match stride_ir::module_from_string(text) {
            Ok(m) => m,
            Err(e) => return Response::err(ErrorKind::Parse, e.render(text)),
        };
        let hash = stride_profdb::module_hash(&module);
        self.modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(workload.to_string(), (hash, text.to_string()));
        let shard = self.map.shard_of(workload, hash);
        let req = Request::SubmitModule {
            workload: workload.to_string(),
            text: text.to_string(),
        };
        let mut acked = None;
        for replica in self.shard_replicas(shard) {
            self.drain_lag(replica);
            match self.call_replica(replica, None, &req) {
                Ok(Response::Ok(body)) => acked = acked.or(Some(body)),
                Ok(resp @ Response::Err { .. }) => return resp,
                Err(_) => self.enqueue_lag(replica, req.clone()),
            }
        }
        match acked {
            Some(body) => {
                self.forwarded.inc();
                Response::Ok(body)
            }
            None => self.unavailable(shard, "no live replica accepted the module"),
        }
    }

    /// Converts a merge into a replication delta and delivers it to all
    /// replicas of the owning shard, acknowledging on the first durable
    /// apply.
    fn merge(&self, meta: &RequestMeta, entry_text: &str) -> Response {
        let entry = match ProfileEntry::from_text(entry_text) {
            Ok(e) => e,
            Err(e) => return Response::err(ErrorKind::from(&e), e.to_string()),
        };
        let shard = self.map.shard_of(&entry.workload, entry.module_hash);
        let req_id = if meta.req_id != 0 {
            meta.req_id
        } else {
            // Id-less client: stamp a router id so replica dedup still
            // sees one identity for this merge across all replicas.
            loop {
                let id = splitmix64_mix(
                    self.id_seq
                        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed),
                );
                if id != 0 {
                    break id;
                }
            }
        };
        let batch = encode_delta_batch(&[DeltaRecord {
            req_id,
            entry_text: entry_text.to_string(),
        }]);
        let req = Request::SyncDelta { batch_text: batch };
        let mut acked = None;
        for replica in self.shard_replicas(shard) {
            // Ordered delivery per replica: missed deliveries go first.
            if !self.drain_lag(replica) {
                self.enqueue_lag(replica, req.clone());
                continue;
            }
            match self.call_replica(replica, None, &req) {
                Ok(Response::Ok(body)) => acked = acked.or(Some(body)),
                Ok(resp @ Response::Err { .. }) => return resp,
                Err(_) => self.enqueue_lag(replica, req.clone()),
            }
        }
        match acked {
            Some(body) => {
                self.forwarded.inc();
                Response::Ok(body)
            }
            None => self.unavailable(shard, "no live replica applied the merge"),
        }
    }

    /// Routes a read/compute request to the first live replica of the
    /// owning shard.
    fn route_by_workload(&self, workload: &str, meta: &RequestMeta, req: &Request) -> Response {
        let hash = {
            let modules = self.modules.lock().unwrap_or_else(PoisonError::into_inner);
            match modules.get(workload) {
                Some(&(hash, _)) => hash,
                None => {
                    return Response::err(
                        ErrorKind::NotFound,
                        format!("no module submitted for workload `{workload}` via this router"),
                    )
                }
            }
        };
        let shard = self.map.shard_of(workload, hash);
        for replica in self.shard_replicas(shard) {
            self.drain_lag(replica);
            match self.call_replica(replica, meta.deadline_fuel, req) {
                Ok(resp) => {
                    self.forwarded.inc();
                    return resp;
                }
                Err(_) => continue,
            }
        }
        self.unavailable(shard, format!("no live replica for `{workload}`"))
    }

    /// Fans a verb out to every replica of every shard, composing the
    /// bodies under `== shard K replica R addr A ==` section headers.
    /// The leading `== router ==` section carries the router's own
    /// counters and per-replica lag depths.
    fn fan_out_body(&self, req: &Request) -> String {
        let mut out = format!(
            "== router ==\nshards {}\nshard-map-version {SHARD_MAP_VERSION}\n",
            self.shards.len()
        );
        out.push_str(&self.lag_lines());
        out.push_str(&self.obs.snapshot_text());
        for (k, replicas) in self.shards.iter().enumerate() {
            for (r, replica) in replicas.iter().enumerate() {
                self.drain_lag(replica);
                let addr = replica.addr();
                let _ = writeln!(out, "== shard {k} replica {r} addr {addr} ==");
                match self.call_replica(replica, None, req) {
                    Ok(Response::Ok(body)) => out.push_str(&body),
                    Ok(Response::Err { kind, message, .. }) => {
                        let _ = writeln!(out, "err {kind}: {message}");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "unreachable: {e}");
                    }
                }
            }
        }
        out
    }

    /// Re-points a replica at a new address and requeues every known
    /// module submission so the (freshly restarted, module-less) daemon
    /// can serve staleness checks and reads again.
    fn route_update(&self, shard: u32, replica_idx: u32, addr: &str) -> Response {
        let Some(replica) = self
            .shards
            .get(shard as usize)
            .and_then(|rs| rs.get(replica_idx as usize))
        else {
            return Response::err(
                ErrorKind::Malformed,
                format!("no such replica: shard {shard} replica {replica_idx}"),
            );
        };
        *replica.addr.lock().unwrap_or_else(PoisonError::into_inner) = addr.to_string();
        *replica
            .client
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        let modules = self.modules.lock().unwrap_or_else(PoisonError::into_inner);
        // Re-teach modules ahead of any queued deltas? No — submissions
        // go to the *front* so staleness checks see the module before
        // replayed merges, preserving per-replica delivery order for the
        // deltas themselves.
        let mut lag = replica.lag.lock().unwrap_or_else(PoisonError::into_inner);
        for (workload, (hash, text)) in modules.iter() {
            if self.map.shard_of(workload, *hash) == shard {
                lag.push_front(Request::SubmitModule {
                    workload: workload.clone(),
                    text: text.clone(),
                });
            }
        }
        drop(lag);
        drop(modules);
        self.drain_lag(replica);
        Response::Ok(format!(
            "routed shard={shard} replica={replica_idx} addr={addr}\n"
        ))
    }

    fn unavailable(&self, shard: u32, message: impl Into<String>) -> Response {
        self.shed_unavailable.inc();
        Response::unavailable(shard, UNAVAILABLE_RETRY_AFTER_MS, message)
    }

    /// Best-effort shutdown fan-out to every replica.
    fn shutdown_backends(&self) {
        for replicas in &self.shards {
            for replica in replicas {
                let _ = self.call_replica(replica, None, &Request::Shutdown);
            }
        }
    }
}

struct Shared {
    queue: BoundedQueue<TcpStream>,
    router: Router,
}

/// A running router daemon (same lifecycle contract as
/// [`crate::Server`]).
pub struct RouterServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterServer {
    /// Binds, spawns the acceptor and workers, returns immediately.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn start(config: RouterConfig) -> io::Result<RouterServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let router = Router::new(config.shards, config.backend_retry);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(64),
            router,
        });
        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
        }
        for _ in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        Ok(RouterServer {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router state (tests, in-process callers).
    pub fn router(&self) -> &Router {
        &self.shared.router
    }

    /// Stops accepting and drains workers (backends are left running;
    /// a client `shutdown` request also fans out to them).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }

    /// Waits for the router to finish.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Convenience: trigger shutdown and wait.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.router.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.router.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.router.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Err(stream) = shared.queue.try_push(stream) {
            let mut stream = stream;
            let resp = Response::busy(
                "router connection queue full, retry later",
                crate::server::BUSY_RETRY_AFTER_MS,
            );
            let _ = write_frame(&mut stream, &resp.to_bytes());
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        serve_connection(stream, shared);
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let resp = Response::err(ErrorKind::Proto, e.to_string());
                let _ = write_frame(&mut stream, &resp.to_bytes());
                return;
            }
            Err(_) => return,
        };
        let (meta, req) = match decode_request(&payload) {
            Ok(pair) => pair,
            Err(msg) => {
                let resp = Response::err(ErrorKind::Proto, msg);
                if write_frame(&mut stream, &resp.to_bytes()).is_err() {
                    return;
                }
                continue;
            }
        };
        if matches!(req, Request::Shutdown) {
            shared.router.shutdown_backends();
            let resp = Response::Ok("shutting down\n".to_string());
            let _ = write_frame(&mut stream, &resp.to_bytes());
            if let Ok(addr) = stream.local_addr() {
                trigger_shutdown(shared, addr);
            }
            return;
        }
        let resp = shared.router.handle(&meta, &req);
        if write_frame(&mut stream, &resp.to_bytes()).is_err() {
            return;
        }
    }
}
