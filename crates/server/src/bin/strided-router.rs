//! `strided-router` — the shard router daemon.
//!
//! ```text
//! strided-router serve [--addr HOST:PORT] [--workers N]
//!                      [--hints DIR] [--hint-cap N] [--probe-every N]
//!                      --shard ADDR[,ADDR...] [--shard ...]
//! ```
//!
//! Each `--shard` flag declares one shard's replica addresses, in shard
//! order (the first flag is shard 0). Prints `routing N shard(s)` and
//! `listening on ADDR` once bound; scripts wait for the latter.
//!
//! `--hints` names the durable root for per-replica hint spools and the
//! failure-detector snapshot; pointing a restarted router at the same
//! directory resumes suspicion counts and undelivered hints. Without it
//! the router uses a scratch directory (hints survive replica crashes
//! but not router restarts).

use std::process::ExitCode;
use stride_server::{RouterConfig, RouterServer};

fn usage() -> ExitCode {
    eprintln!(
        "usage: strided-router serve [--addr HOST:PORT] [--workers N]\n\
         \x20                           [--hints DIR] [--hint-cap N] [--probe-every N]\n\
         \x20                           --shard ADDR[,ADDR...] [--shard ...]\n\
         \n\
         \x20 --addr        listen address (default 127.0.0.1:7310; :0 = ephemeral)\n\
         \x20 --workers     worker threads (default 4)\n\
         \x20 --hints       durable root for hint spools + detector snapshot\n\
         \x20               (default: a scratch directory)\n\
         \x20 --hint-cap    max spooled hints per replica (default 4096)\n\
         \x20 --probe-every probe replicas every N handled requests (default 8)\n\
         \x20 --shard       one shard's replica addresses, comma-separated;\n\
         \x20               repeat per shard (flag order = shard index)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("serve") {
        return usage();
    }

    let mut addr = "127.0.0.1:7310".to_string();
    let mut workers = 4usize;
    let mut shards: Vec<Vec<String>> = Vec::new();
    let mut hint_root: Option<std::path::PathBuf> = None;
    let mut hint_cap: Option<usize> = None;
    let mut probe_every: Option<u64> = None;

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("strided-router: `{flag}` needs a value");
            return usage();
        };
        match flag.as_str() {
            "--addr" => addr = value.clone(),
            "--workers" => match value.parse() {
                Ok(n) => workers = n,
                Err(_) => return usage(),
            },
            "--hints" => hint_root = Some(std::path::PathBuf::from(value)),
            "--hint-cap" => match value.parse() {
                Ok(n) => hint_cap = Some(n),
                Err(_) => return usage(),
            },
            "--probe-every" => match value.parse() {
                Ok(n) => probe_every = Some(n),
                Err(_) => return usage(),
            },
            "--shard" => {
                let replicas: Vec<String> = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if replicas.is_empty() {
                    eprintln!("strided-router: `--shard` needs at least one address");
                    return usage();
                }
                shards.push(replicas);
            }
            _ => {
                eprintln!("strided-router: unknown flag `{flag}`");
                return usage();
            }
        }
    }
    if shards.is_empty() {
        eprintln!("strided-router: at least one `--shard` is required");
        return usage();
    }

    let mut config = RouterConfig {
        addr,
        workers,
        hint_root,
        ..RouterConfig::loopback(shards)
    };
    if let Some(cap) = hint_cap {
        config.hint_cap = cap;
    }
    if let Some(every) = probe_every {
        config.probe_every = every;
    }
    println!("routing {} shard(s)", config.shards.len());
    let server = match RouterServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("strided-router: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    server.join();
    println!("strided-router: shut down cleanly");
    ExitCode::SUCCESS
}
