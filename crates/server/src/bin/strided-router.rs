//! `strided-router` — the shard router daemon.
//!
//! ```text
//! strided-router serve [--addr HOST:PORT] [--workers N]
//!                      --shard ADDR[,ADDR...] [--shard ...]
//! ```
//!
//! Each `--shard` flag declares one shard's replica addresses, in shard
//! order (the first flag is shard 0). Prints `routing N shard(s)` and
//! `listening on ADDR` once bound; scripts wait for the latter.

use std::process::ExitCode;
use stride_server::{RouterConfig, RouterServer};

fn usage() -> ExitCode {
    eprintln!(
        "usage: strided-router serve [--addr HOST:PORT] [--workers N]\n\
         \x20                           --shard ADDR[,ADDR...] [--shard ...]\n\
         \n\
         \x20 --addr     listen address (default 127.0.0.1:7310; :0 = ephemeral)\n\
         \x20 --workers  worker threads (default 4)\n\
         \x20 --shard    one shard's replica addresses, comma-separated;\n\
         \x20            repeat per shard (flag order = shard index)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("serve") {
        return usage();
    }

    let mut addr = "127.0.0.1:7310".to_string();
    let mut workers = 4usize;
    let mut shards: Vec<Vec<String>> = Vec::new();

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("strided-router: `{flag}` needs a value");
            return usage();
        };
        match flag.as_str() {
            "--addr" => addr = value.clone(),
            "--workers" => match value.parse() {
                Ok(n) => workers = n,
                Err(_) => return usage(),
            },
            "--shard" => {
                let replicas: Vec<String> = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if replicas.is_empty() {
                    eprintln!("strided-router: `--shard` needs at least one address");
                    return usage();
                }
                shards.push(replicas);
            }
            _ => {
                eprintln!("strided-router: unknown flag `{flag}`");
                return usage();
            }
        }
    }
    if shards.is_empty() {
        eprintln!("strided-router: at least one `--shard` is required");
        return usage();
    }

    let config = RouterConfig {
        addr,
        workers,
        ..RouterConfig::loopback(shards)
    };
    println!("routing {} shard(s)", config.shards.len());
    let server = match RouterServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("strided-router: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    server.join();
    println!("strided-router: shut down cleanly");
    ExitCode::SUCCESS
}
