//! `strided` — the stride-profiling daemon.
//!
//! ```text
//! strided serve [--addr HOST:PORT] [--workers N] [--queue N]
//!               [--db PATH] [--fuel N] [--inject SPEC]
//!               [--announce ROUTER/SHARD/REPLICA]
//! ```
//!
//! Prints `listening on ADDR` once the socket is bound (scripts wait for
//! that line), then serves until a `shutdown` request arrives.
//!
//! With `--announce`, the daemon registers itself with its shard router
//! after binding: it sends the router a `route-update` naming its own
//! address and replica slot. A crashed replica restarted by a supervisor
//! (on any free port) rejoins the cluster unattended — the router's
//! revival routine re-teaches its modules, drains its hint spool, and
//! runs an anti-entropy repair round.

use std::process::ExitCode;
use stride_core::{FaultInjector, FaultPlan};
use stride_server::{Client, Request, Response, RetryPolicy, Server, ServerConfig, ServiceConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: strided serve [--addr HOST:PORT] [--workers N] [--queue N]\n\
         \x20                    [--db PATH] [--fuel N] [--inject SPEC]\n\
         \x20                    [--announce ROUTER/SHARD/REPLICA]\n\
         \n\
         \x20 --addr     listen address (default 127.0.0.1:7311; :0 = ephemeral)\n\
         \x20 --workers  worker threads (default 4)\n\
         \x20 --queue    connection queue capacity (default 64)\n\
         \x20 --db       profile database directory (default ./profdb)\n\
         \x20 --fuel     per-request fuel deadline (default 2000000000)\n\
         \x20 --inject   server-side fault plan, e.g. profile-zero-noise@mcf:0.5\n\
         \x20 --announce self-register with the router at HOST:PORT as\n\
         \x20            shard SHARD replica REPLICA (e.g. 127.0.0.1:7310/1/0)"
    );
    ExitCode::from(2)
}

/// `HOST:PORT/SHARD/REPLICA` → (router address, shard, replica).
fn parse_announce(spec: &str) -> Option<(String, u32, u32)> {
    let (rest, replica) = spec.rsplit_once('/')?;
    let (router, shard) = rest.rsplit_once('/')?;
    Some((
        router.to_string(),
        shard.parse().ok()?,
        replica.parse().ok()?,
    ))
}

/// Registers this daemon with its router (bounded retries — the router
/// may still be starting). Best-effort: the router's probe loop also
/// notices a reachable replica on its own.
fn announce(router: &str, shard: u32, replica: u32, my_addr: &str) {
    let req = Request::RouteUpdate {
        shard,
        replica,
        addr: my_addr.to_string(),
    };
    for _ in 0..40 {
        if let Ok(mut client) = Client::connect_with(router, RetryPolicy::no_retries()) {
            if let Ok(Response::Ok(_)) = client.call(&req) {
                println!("announced to {router} as shard {shard} replica {replica}");
                return;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
    eprintln!("strided: announce to {router} failed; relying on router probes");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("serve") {
        return usage();
    }

    let mut addr = "127.0.0.1:7311".to_string();
    let mut workers = 4usize;
    let mut queue_cap = 64usize;
    let mut db = std::path::PathBuf::from("profdb");
    let mut fuel: Option<u64> = None;
    let mut inject: Option<String> = None;
    let mut announce_spec: Option<(String, u32, u32)> = None;

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("strided: `{flag}` needs a value");
            return usage();
        };
        match flag.as_str() {
            "--addr" => addr = value.clone(),
            "--workers" => match value.parse() {
                Ok(n) => workers = n,
                Err(_) => return usage(),
            },
            "--queue" => match value.parse() {
                Ok(n) => queue_cap = n,
                Err(_) => return usage(),
            },
            "--db" => db = std::path::PathBuf::from(value),
            "--fuel" => match value.parse() {
                Ok(n) => fuel = Some(n),
                Err(_) => return usage(),
            },
            "--inject" => inject = Some(value.clone()),
            "--announce" => match parse_announce(value) {
                Some(spec) => announce_spec = Some(spec),
                None => {
                    eprintln!("strided: bad --announce spec `{value}` (want ROUTER/SHARD/REPLICA)");
                    return usage();
                }
            },
            _ => {
                eprintln!("strided: unknown flag `{flag}`");
                return usage();
            }
        }
    }

    let mut service = ServiceConfig::new(db);
    if let Some(fuel) = fuel {
        service.request_fuel = fuel;
    }
    if let Some(spec) = inject {
        match FaultPlan::parse(&spec) {
            Ok(plan) => service.injector = Some(FaultInjector::new(plan)),
            Err(e) => {
                eprintln!("strided: bad --inject plan: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let config = ServerConfig {
        addr,
        workers,
        queue_cap,
        service,
    };
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("strided: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Surface what startup recovery had to do before accepting traffic, so
    // operators (and the chaos harness) can audit crash handling.
    match server.service().recovery_report() {
        Some(report) if report.eventful() => println!("{report}"),
        _ => println!("recovery: clean start"),
    }
    println!("listening on {}", server.addr());
    let announcer = announce_spec.map(|(router, shard, replica)| {
        let my_addr = server.addr().to_string();
        std::thread::spawn(move || announce(&router, shard, replica, &my_addr))
    });
    server.join();
    if let Some(handle) = announcer {
        let _ = handle.join();
    }
    println!("strided: shut down cleanly");
    ExitCode::SUCCESS
}
