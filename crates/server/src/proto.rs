//! Wire protocol: length-prefixed, checksummed, versioned frames
//! carrying line-oriented text requests and responses.
//!
//! A v2 frame is a big-endian `u32` *wire length* followed by that many
//! bytes: a protocol version byte (`2`), the payload, and a trailing
//! `fnv1a64` (big-endian `u64`) over the version byte and payload. The
//! checksum turns a truncated, duplicated-at-an-offset, or bit-flipped
//! frame into a typed protocol error instead of a misparse; the version
//! byte turns a speaks-something-else peer into the same.
//!
//! A request payload is an optional `@req` meta line (idempotency id and
//! deadline — see [`RequestMeta`]), then one header line — `verb
//! key=value ...` — plus an optional body after the first newline (IR
//! text, profile entries). A response payload is `ok` or `err <kind>
//! [retry-after=MS]` on the first line, body after.

use std::io::{Read, Write};
use stride_core::{PipelineError, ProfilingVariant};
use stride_profdb::{fnv1a64, DbError};

/// Frames larger than this are rejected as a protocol error (guards the
/// daemon against a garbage length prefix allocating gigabytes).
pub const MAX_FRAME: usize = 16 << 20;

/// Protocol version carried in every frame.
pub const PROTO_VERSION: u8 = 2;

/// Version byte + checksum trailer added around each payload.
const FRAME_OVERHEAD: usize = 1 + 8;

/// Reads one frame and verifies its version byte and checksum; returns
/// the payload, or `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O failures and `InvalidData` for oversized lengths, runt frames,
/// version mismatches, and checksum failures — all of which a server
/// answers with a typed `proto` error before hanging up.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated frame length",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME + FRAME_OVERHEAD {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    if len < FRAME_OVERHEAD {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("runt frame of {len} bytes (minimum is {FRAME_OVERHEAD})"),
        ));
    }
    let mut wire = vec![0u8; len];
    r.read_exact(&mut wire)?;
    if wire[0] != PROTO_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "unsupported protocol version {} (this build speaks {PROTO_VERSION})",
                wire[0]
            ),
        ));
    }
    let body_end = len - 8;
    let want = u64::from_be_bytes({
        let mut b = [0u8; 8];
        b.copy_from_slice(&wire[body_end..]);
        b
    });
    let got = fnv1a64(&wire[..body_end]);
    if got != want {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame checksum mismatch (got {got:016x}, frame says {want:016x})"),
        ));
    }
    wire.truncate(body_end);
    wire.remove(0);
    Ok(Some(wire))
}

/// Encodes a payload as a full wire frame (length prefix, version byte,
/// payload, checksum) — exposed so fault injectors can manipulate exact
/// frame bytes.
///
/// # Errors
///
/// Rejects payloads over [`MAX_FRAME`].
pub fn encode_frame(payload: &[u8]) -> std::io::Result<Vec<u8>> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let wire_len = payload.len() + FRAME_OVERHEAD;
    let mut frame = Vec::with_capacity(4 + wire_len);
    frame.extend_from_slice(&(wire_len as u32).to_be_bytes());
    frame.push(PROTO_VERSION);
    frame.extend_from_slice(payload);
    let sum = fnv1a64(&frame[4..]);
    frame.extend_from_slice(&sum.to_be_bytes());
    Ok(frame)
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    // One write per frame: splitting the length prefix from the payload
    // creates a write-write-read pattern that Nagle + delayed ACK turn
    // into ~40 ms stalls per round trip on loopback TCP.
    let frame = encode_frame(payload)?;
    w.write_all(&frame)?;
    w.flush()
}

/// Per-request metadata riding in front of the request proper: the
/// client's idempotency id (0 = none; recorded in the WAL so a retried
/// merge cannot double-count) and an optional deadline expressed as a
/// VM fuel budget (the server clamps its per-request fuel to it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestMeta {
    /// Idempotency key; 0 means the request carries none.
    pub req_id: u64,
    /// Deadline as a fuel budget; `None` accepts the server default.
    pub deadline_fuel: Option<u64>,
}

impl RequestMeta {
    /// True when the meta carries nothing (encoded as no `@req` line,
    /// which is also the v1-compatible form).
    pub fn is_empty(&self) -> bool {
        self.req_id == 0 && self.deadline_fuel.is_none()
    }
}

/// Serializes a request with its meta line.
pub fn encode_request(meta: &RequestMeta, req: &Request) -> Vec<u8> {
    let body = req.to_bytes();
    if meta.is_empty() {
        return body;
    }
    let mut line = format!("@req id={:016x}", meta.req_id);
    if let Some(fuel) = meta.deadline_fuel {
        line.push_str(&format!(" deadline={fuel}"));
    }
    line.push('\n');
    let mut out = line.into_bytes();
    out.extend_from_slice(&body);
    out
}

/// Parses a request payload with its optional `@req` meta line.
///
/// # Errors
///
/// Returns a message describing the malformed meta or request (surfaced
/// to the client as an [`ErrorKind::Proto`] error).
pub fn decode_request(payload: &[u8]) -> Result<(RequestMeta, Request), String> {
    if !payload.starts_with(b"@req") {
        return Ok((RequestMeta::default(), Request::from_bytes(payload)?));
    }
    let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
    let (meta_line, rest) = text.split_once('\n').unwrap_or((text, ""));
    let mut meta = RequestMeta::default();
    for part in meta_line
        .strip_prefix("@req")
        .unwrap_or("")
        .split_whitespace()
    {
        let Some((k, v)) = part.split_once('=') else {
            return Err(format!("bad @req field `{part}` (expected key=value)"));
        };
        match k {
            "id" => {
                meta.req_id = u64::from_str_radix(v, 16)
                    .map_err(|_| format!("bad @req id `{v}` (expected hex)"))?;
            }
            "deadline" => {
                meta.deadline_fuel = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("bad @req deadline `{v}` (expected integer)"))?,
                );
            }
            other => return Err(format!("unknown @req field `{other}`")),
        }
    }
    Ok((meta, Request::from_bytes(rest.as_bytes())?))
}

/// A service request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register (or replace) a workload's module from IR text.
    SubmitModule {
        /// Workload name the module is stored under.
        workload: String,
        /// IR text (`stride_ir` syntax).
        text: String,
    },
    /// Run one profiling pass and merge the result into the database.
    Profile {
        /// A previously submitted workload.
        workload: String,
        /// Profiling variant.
        variant: ProfilingVariant,
        /// Entry-function arguments (the train input).
        args: Vec<i64>,
    },
    /// Profile and report the Fig. 5 classification.
    Classify {
        /// A previously submitted workload.
        workload: String,
        /// Profiling variant.
        variant: ProfilingVariant,
        /// Entry-function arguments (the train input).
        args: Vec<i64>,
    },
    /// The full speedup experiment: profile on the train input, feed
    /// back, measure baseline vs. prefetching binaries on the ref input.
    Prefetch {
        /// A previously submitted workload.
        workload: String,
        /// Profiling variant.
        variant: ProfilingVariant,
        /// Train input.
        train_args: Vec<i64>,
        /// Reference input.
        ref_args: Vec<i64>,
    },
    /// Fetch the accumulated database entry for a workload's current
    /// module.
    GetProfile {
        /// A previously submitted workload.
        workload: String,
    },
    /// Merge a client-supplied profile entry into the database.
    MergeProfile {
        /// A serialized [`stride_profdb::ProfileEntry`].
        entry_text: String,
    },
    /// Replica-to-replica delta exchange: apply a checksummed batch of
    /// replicated merges (see [`stride_profdb::repl`]), exactly-once per
    /// delta id.
    SyncDelta {
        /// A serialized delta batch (`# profdb delta-batch v1`).
        batch_text: String,
    },
    /// Garbage-collect database entries whose module is retired or
    /// stale (fanned out cluster-wide by the router).
    Gc,
    /// Liveness probe: answers `pong` without touching the database.
    /// The router's failure detector sends these on its logical-clock
    /// schedule; any daemon answers them.
    Ping,
    /// Anti-entropy: report the store's per-`(workload, module-hash)`
    /// content digest table (one sorted line per entry file), cheap to
    /// diff across the replicas of a shard.
    Digest,
    /// Anti-entropy: export the store's retained *pre-merge* delta
    /// window as a delta batch, so a diverged sibling can be re-sent
    /// the exact deltas (WAL req-id dedup absorbs the duplicates). The
    /// WAL proper holds post-merge redo states, which cannot be merged
    /// into a sibling without double-counting — hence the separate
    /// retention window.
    PullDeltas,
    /// Router-only: the failure detector's per-replica state table.
    /// A plain daemon rejects this verb.
    Health,
    /// Router-only: run one anti-entropy repair round now (digest every
    /// replica, re-send deltas across any divergence). A plain daemon
    /// rejects this verb.
    Repair,
    /// Router-only: re-point one replica of a shard at a new address
    /// (a crashed daemon restarts on a fresh port; the router re-learns
    /// it without a reboot). A plain daemon rejects this verb.
    RouteUpdate {
        /// Shard whose replica moved.
        shard: u32,
        /// Replica index within the shard.
        replica: u32,
        /// The replica's new `host:port`.
        addr: String,
    },
    /// Service counters.
    Stats,
    /// Drain queued work and stop the daemon.
    Shutdown,
}

fn fmt_args(args: &[i64]) -> String {
    args.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_args(s: &str) -> Result<Vec<i64>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| {
            p.parse::<i64>()
                .map_err(|_| format!("bad argument `{p}` (expected integer)"))
        })
        .collect()
}

/// The `key=value` fields of a request header line.
type Fields<'a> = Vec<(&'a str, &'a str)>;

/// Splits a header line into its verb and `key=value` fields.
fn fields(header: &str) -> Result<(&str, Fields<'_>), String> {
    let mut parts = header.split_whitespace();
    let Some(verb) = parts.next() else {
        return Err("empty request".to_string());
    };
    let mut kv = Vec::new();
    for part in parts {
        let Some((k, v)) = part.split_once('=') else {
            return Err(format!("expected key=value, got `{part}`"));
        };
        kv.push((k, v));
    }
    Ok((verb, kv))
}

fn take<'a>(kv: &[(&str, &'a str)], key: &str) -> Result<&'a str, String> {
    kv.iter()
        .find(|(k, _)| *k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| format!("missing `{key}=`"))
}

impl Request {
    /// Serializes for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let text = match self {
            Request::SubmitModule { workload, text } => {
                format!("submit workload={workload}\n{text}")
            }
            Request::Profile {
                workload,
                variant,
                args,
            } => format!(
                "profile workload={workload} variant={variant} args={}",
                fmt_args(args)
            ),
            Request::Classify {
                workload,
                variant,
                args,
            } => format!(
                "classify workload={workload} variant={variant} args={}",
                fmt_args(args)
            ),
            Request::Prefetch {
                workload,
                variant,
                train_args,
                ref_args,
            } => format!(
                "prefetch workload={workload} variant={variant} train={} ref={}",
                fmt_args(train_args),
                fmt_args(ref_args)
            ),
            Request::GetProfile { workload } => format!("get-profile workload={workload}"),
            Request::MergeProfile { entry_text } => format!("merge-profile\n{entry_text}"),
            Request::SyncDelta { batch_text } => format!("sync-delta\n{batch_text}"),
            Request::Gc => "gc".to_string(),
            Request::Ping => "ping".to_string(),
            Request::Digest => "digest".to_string(),
            Request::PullDeltas => "pull-deltas".to_string(),
            Request::Health => "health".to_string(),
            Request::Repair => "repair".to_string(),
            Request::RouteUpdate {
                shard,
                replica,
                addr,
            } => format!("route-update shard={shard} replica={replica} addr={addr}"),
            Request::Stats => "stats".to_string(),
            Request::Shutdown => "shutdown".to_string(),
        };
        text.into_bytes()
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed header (surfaced to the
    /// client as an [`ErrorKind::Proto`] error).
    pub fn from_bytes(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
        let (header, body) = match text.split_once('\n') {
            Some((h, b)) => (h, b),
            None => (text, ""),
        };
        let (verb, kv) = fields(header)?;
        let variant_of = |kv: &[(&str, &str)]| -> Result<ProfilingVariant, String> {
            take(kv, "variant")?.parse::<ProfilingVariant>()
        };
        match verb {
            "submit" => Ok(Request::SubmitModule {
                workload: take(&kv, "workload")?.to_string(),
                text: body.to_string(),
            }),
            "profile" => Ok(Request::Profile {
                workload: take(&kv, "workload")?.to_string(),
                variant: variant_of(&kv)?,
                args: parse_args(take(&kv, "args")?)?,
            }),
            "classify" => Ok(Request::Classify {
                workload: take(&kv, "workload")?.to_string(),
                variant: variant_of(&kv)?,
                args: parse_args(take(&kv, "args")?)?,
            }),
            "prefetch" => Ok(Request::Prefetch {
                workload: take(&kv, "workload")?.to_string(),
                variant: variant_of(&kv)?,
                train_args: parse_args(take(&kv, "train")?)?,
                ref_args: parse_args(take(&kv, "ref")?)?,
            }),
            "get-profile" => Ok(Request::GetProfile {
                workload: take(&kv, "workload")?.to_string(),
            }),
            "merge-profile" => Ok(Request::MergeProfile {
                entry_text: body.to_string(),
            }),
            "sync-delta" => Ok(Request::SyncDelta {
                batch_text: body.to_string(),
            }),
            "gc" => Ok(Request::Gc),
            "ping" => Ok(Request::Ping),
            "digest" => Ok(Request::Digest),
            "pull-deltas" => Ok(Request::PullDeltas),
            "health" => Ok(Request::Health),
            "repair" => Ok(Request::Repair),
            "route-update" => Ok(Request::RouteUpdate {
                shard: take(&kv, "shard")?
                    .parse()
                    .map_err(|_| "bad shard index".to_string())?,
                replica: take(&kv, "replica")?
                    .parse()
                    .map_err(|_| "bad replica index".to_string())?,
                addr: take(&kv, "addr")?.to_string(),
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request verb `{other}`")),
        }
    }
}

/// Typed failure categories on the wire — the client can react to the
/// kind without parsing prose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The pipeline VM aborted (fuel, wild access, ...).
    Vm,
    /// IR or profile text failed to parse.
    Parse,
    /// Structurally unusable input.
    Malformed,
    /// A fault-injection plan string was invalid.
    BadFaultPlan,
    /// The request handler panicked (isolated; the daemon keeps serving).
    Panic,
    /// The connection queue was full — retry later.
    Busy,
    /// The request itself violated the protocol.
    Proto,
    /// No such workload / profile entry.
    NotFound,
    /// The stored profile was taken on a different module version.
    Stale,
    /// The shard owning the request's key range has no live replica —
    /// the rest of the cluster keeps serving; retry this key later.
    Unavailable,
    /// A dead replica's durable hint log is at capacity: the router
    /// refuses the merge whole rather than applying it partially, so
    /// nothing it acknowledges can be silently dropped. Retry later.
    HandoffFull,
}

impl ErrorKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Vm => "vm",
            ErrorKind::Parse => "parse",
            ErrorKind::Malformed => "malformed",
            ErrorKind::BadFaultPlan => "bad-fault-plan",
            ErrorKind::Panic => "panic",
            ErrorKind::Busy => "busy",
            ErrorKind::Proto => "proto",
            ErrorKind::NotFound => "not-found",
            ErrorKind::Stale => "stale",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::HandoffFull => "handoff-full",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "vm" => ErrorKind::Vm,
            "parse" => ErrorKind::Parse,
            "malformed" => ErrorKind::Malformed,
            "bad-fault-plan" => ErrorKind::BadFaultPlan,
            "panic" => ErrorKind::Panic,
            "busy" => ErrorKind::Busy,
            "proto" => ErrorKind::Proto,
            "not-found" => ErrorKind::NotFound,
            "stale" => ErrorKind::Stale,
            "unavailable" => ErrorKind::Unavailable,
            "handoff-full" => ErrorKind::HandoffFull,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&PipelineError> for ErrorKind {
    fn from(e: &PipelineError) -> Self {
        match e {
            PipelineError::Vm(_) => ErrorKind::Vm,
            PipelineError::Parse(_) => ErrorKind::Parse,
            PipelineError::Malformed(_) => ErrorKind::Malformed,
            PipelineError::BadFaultPlan(_) => ErrorKind::BadFaultPlan,
        }
    }
}

impl From<&DbError> for ErrorKind {
    fn from(e: &DbError) -> Self {
        match e {
            DbError::Io(_) => ErrorKind::Malformed,
            DbError::Parse(_) => ErrorKind::Parse,
            DbError::Stale { .. } => ErrorKind::Stale,
            DbError::KeyMismatch(_) => ErrorKind::Malformed,
            DbError::NotFound { .. } => ErrorKind::NotFound,
            DbError::PendingWal { .. } => ErrorKind::Malformed,
        }
    }
}

/// A service response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success; `body` is request-specific text.
    Ok(String),
    /// Typed failure.
    Err {
        /// Failure category.
        kind: ErrorKind,
        /// Human-readable detail (may be multi-line, e.g. caret
        /// diagnostics).
        message: String,
        /// Load-shedding hint: retry no sooner than this many
        /// milliseconds (set on `busy` and `unavailable` responses).
        retry_after_ms: Option<u64>,
        /// The shard whose key range the failure is confined to (set by
        /// the router on `unavailable`, so a client can tell a dead key
        /// range from a dead cluster).
        shard: Option<u32>,
    },
}

impl Response {
    /// Builds an error response from any typed error.
    pub fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Err {
            kind,
            message: message.into(),
            retry_after_ms: None,
            shard: None,
        }
    }

    /// Builds a load-shedding `busy` response with a retry-after hint.
    pub fn busy(message: impl Into<String>, retry_after_ms: u64) -> Response {
        Response::Err {
            kind: ErrorKind::Busy,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
            shard: None,
        }
    }

    /// Builds the router's shard-down response: typed `unavailable`,
    /// scoped to the dead shard, with a retry hint.
    pub fn unavailable(shard: u32, retry_after_ms: u64, message: impl Into<String>) -> Response {
        Response::Err {
            kind: ErrorKind::Unavailable,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
            shard: Some(shard),
        }
    }

    /// Builds the router's hint-log-at-capacity response: typed
    /// `handoff-full`, scoped to the overloaded shard, with a retry
    /// hint. The merge was NOT applied anywhere.
    pub fn handoff_full(shard: u32, retry_after_ms: u64, message: impl Into<String>) -> Response {
        Response::Err {
            kind: ErrorKind::HandoffFull,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
            shard: Some(shard),
        }
    }

    /// Serializes for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Response::Ok(body) => format!("ok\n{body}").into_bytes(),
            Response::Err {
                kind,
                message,
                retry_after_ms,
                shard,
            } => {
                let mut header = format!("err {kind}");
                if let Some(k) = shard {
                    header.push_str(&format!(" shard={k}"));
                }
                if let Some(ms) = retry_after_ms {
                    header.push_str(&format!(" retry-after={ms}"));
                }
                format!("{header}\n{message}").into_bytes()
            }
        }
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Returns a message when the payload is not a valid response.
    pub fn from_bytes(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "response is not UTF-8".to_string())?;
        let (header, body) = match text.split_once('\n') {
            Some((h, b)) => (h, b),
            None => (text, ""),
        };
        if header == "ok" {
            return Ok(Response::Ok(body.to_string()));
        }
        if let Some(rest) = header.strip_prefix("err ") {
            let mut parts = rest.split_whitespace();
            let kind_s = parts.next().unwrap_or("");
            let kind =
                ErrorKind::parse(kind_s).ok_or_else(|| format!("unknown error kind `{kind_s}`"))?;
            let mut retry_after_ms = None;
            let mut shard = None;
            for part in parts {
                if let Some(ms) = part.strip_prefix("retry-after=") {
                    retry_after_ms = Some(
                        ms.parse::<u64>()
                            .map_err(|_| format!("bad retry-after `{ms}`"))?,
                    );
                } else if let Some(k) = part.strip_prefix("shard=") {
                    shard = Some(k.parse::<u32>().map_err(|_| format!("bad shard `{k}`"))?);
                } else {
                    return Err(format!("unknown error field `{part}`"));
                }
            }
            return Ok(Response::Err {
                kind,
                message: body.to_string(),
                retry_after_ms,
                shard,
            });
        }
        Err(format!("bad response header `{header}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn truncated_frames_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::SubmitModule {
                workload: "mcf".into(),
                text: "fn @main() {\n}\n".into(),
            },
            Request::Profile {
                workload: "mcf".into(),
                variant: stride_core::ProfilingVariant::EdgeCheck,
                args: vec![3, 500],
            },
            Request::Classify {
                workload: "gap".into(),
                variant: stride_core::ProfilingVariant::SampleNaiveAll,
                args: vec![],
            },
            Request::Prefetch {
                workload: "parser".into(),
                variant: stride_core::ProfilingVariant::TwoPass,
                train_args: vec![1],
                ref_args: vec![-2, 9],
            },
            Request::GetProfile {
                workload: "mcf".into(),
            },
            Request::MergeProfile {
                entry_text: "# profdb v1\nworkload x\nmodule 00ff\nruns 1\n".into(),
            },
            Request::SyncDelta {
                batch_text: "# profdb delta-batch v1\ncount 0\nchecksum 0000000000000000\n".into(),
            },
            Request::Gc,
            Request::Ping,
            Request::Digest,
            Request::PullDeltas,
            Request::Health,
            Request::Repair,
            Request::RouteUpdate {
                shard: 2,
                replica: 1,
                addr: "127.0.0.1:9999".into(),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let back = Request::from_bytes(&req.to_bytes()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::from_bytes(b"").is_err());
        assert!(Request::from_bytes(b"bogus-verb").is_err());
        assert!(Request::from_bytes(b"profile workload=x").is_err());
        assert!(Request::from_bytes(b"profile workload=x variant=nope args=1").is_err());
        assert!(Request::from_bytes(b"profile workload=x variant=edge-check args=one").is_err());
        assert!(Request::from_bytes(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Ok("body\nlines\n".into()),
            Response::Ok(String::new()),
            Response::err(ErrorKind::Vm, "vm: out of fuel"),
            Response::err(ErrorKind::Busy, ""),
            Response::busy("queue full", 50),
            Response::unavailable(2, 250, "shard 2 has no live replica"),
            Response::handoff_full(1, 200, "hint log for shard 1 replica 0 is full"),
        ];
        for resp in responses {
            let back = Response::from_bytes(&resp.to_bytes()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn unavailable_wire_header_is_pinned() {
        // The chaos campaign and ci.sh grep for this exact shape: a dead
        // shard must answer `err unavailable shard=K retry-after=MS` for
        // its key range only.
        let resp = Response::unavailable(1, 200, "no live replica");
        let bytes = resp.to_bytes();
        let text = std::str::from_utf8(&bytes).unwrap();
        assert!(
            text.starts_with("err unavailable shard=1 retry-after=200\n"),
            "{text}"
        );
        assert_eq!(Response::from_bytes(&bytes).unwrap(), resp);
    }

    #[test]
    fn corrupted_frames_are_typed_protocol_errors() {
        let mut good = Vec::new();
        write_frame(&mut good, b"stats").unwrap();

        // Bit flip in the payload: checksum catches it.
        let mut flipped = good.clone();
        let last = flipped.len() - 9;
        flipped[last] ^= 0x40;
        let err = read_frame(&mut &flipped[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        // Wrong version byte (re-checksummed so only the version trips).
        let mut wrong_ver = good.clone();
        wrong_ver[4] = 1;
        let sum = fnv1a64(&wrong_ver[4..wrong_ver.len() - 8]);
        let at = wrong_ver.len() - 8;
        wrong_ver[at..].copy_from_slice(&sum.to_be_bytes());
        let err = read_frame(&mut &wrong_ver[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // Runt frame: length says fewer bytes than version + checksum.
        let mut runt = Vec::new();
        runt.extend_from_slice(&3u32.to_be_bytes());
        runt.extend_from_slice(&[PROTO_VERSION, 0, 0]);
        let err = read_frame(&mut &runt[..]).unwrap_err();
        assert!(err.to_string().contains("runt"), "{err}");

        // Truncated mid-payload: an EOF error, not a hang or misparse.
        let mut cut = good.clone();
        cut.truncate(good.len() - 3);
        assert!(read_frame(&mut &cut[..]).is_err());
    }

    #[test]
    fn request_meta_round_trips() {
        let req = Request::Stats;
        // No meta: payload is byte-identical to the bare request (v1
        // compatible) and decodes to the default meta.
        let bare = encode_request(&RequestMeta::default(), &req);
        assert_eq!(bare, req.to_bytes());
        let (meta, back) = decode_request(&bare).unwrap();
        assert!(meta.is_empty());
        assert_eq!(back, req);

        // Full meta survives, including in front of a request body.
        let meta = RequestMeta {
            req_id: 0xdead_beef_0123,
            deadline_fuel: Some(750_000),
        };
        let merge = Request::MergeProfile {
            entry_text: "# profdb v1\nworkload x\nmodule 00ff\nruns 1\n".into(),
        };
        let bytes = encode_request(&meta, &merge);
        let (meta_back, req_back) = decode_request(&bytes).unwrap();
        assert_eq!(meta_back, meta);
        assert_eq!(req_back, merge);

        // Id without deadline.
        let meta = RequestMeta {
            req_id: 7,
            deadline_fuel: None,
        };
        let (meta_back, _) = decode_request(&encode_request(&meta, &req)).unwrap();
        assert_eq!(meta_back, meta);
    }

    #[test]
    fn malformed_request_meta_is_rejected() {
        assert!(decode_request(b"@req id=zz\nstats").is_err());
        assert!(decode_request(b"@req deadline=-1\nstats").is_err());
        assert!(decode_request(b"@req bogus=1\nstats").is_err());
        assert!(decode_request(b"@req id\nstats").is_err());
    }

    #[test]
    fn every_error_kind_round_trips() {
        for kind in [
            ErrorKind::Vm,
            ErrorKind::Parse,
            ErrorKind::Malformed,
            ErrorKind::BadFaultPlan,
            ErrorKind::Panic,
            ErrorKind::Busy,
            ErrorKind::Proto,
            ErrorKind::NotFound,
            ErrorKind::Stale,
            ErrorKind::Unavailable,
            ErrorKind::HandoffFull,
        ] {
            assert_eq!(ErrorKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::parse("nope"), None);
    }
}
