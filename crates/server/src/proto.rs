//! Wire protocol: length-prefixed frames carrying line-oriented text
//! requests and responses.
//!
//! A frame is a big-endian `u32` payload length followed by the payload.
//! A request payload is one header line — `verb key=value ...` — plus an
//! optional body after the first newline (IR text, profile entries). A
//! response payload is `ok` or `err <kind>` on the first line, body
//! after.

use std::io::{Read, Write};
use stride_core::{PipelineError, ProfilingVariant};
use stride_profdb::DbError;

/// Frames larger than this are rejected as a protocol error (guards the
/// daemon against a garbage length prefix allocating gigabytes).
pub const MAX_FRAME: usize = 16 << 20;

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O failures, truncated frames, and oversized lengths.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated frame length",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    // One write per frame: splitting the length prefix from the payload
    // creates a write-write-read pattern that Nagle + delayed ACK turn
    // into ~40 ms stalls per round trip on loopback TCP.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// A service request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register (or replace) a workload's module from IR text.
    SubmitModule {
        /// Workload name the module is stored under.
        workload: String,
        /// IR text (`stride_ir` syntax).
        text: String,
    },
    /// Run one profiling pass and merge the result into the database.
    Profile {
        /// A previously submitted workload.
        workload: String,
        /// Profiling variant.
        variant: ProfilingVariant,
        /// Entry-function arguments (the train input).
        args: Vec<i64>,
    },
    /// Profile and report the Fig. 5 classification.
    Classify {
        /// A previously submitted workload.
        workload: String,
        /// Profiling variant.
        variant: ProfilingVariant,
        /// Entry-function arguments (the train input).
        args: Vec<i64>,
    },
    /// The full speedup experiment: profile on the train input, feed
    /// back, measure baseline vs. prefetching binaries on the ref input.
    Prefetch {
        /// A previously submitted workload.
        workload: String,
        /// Profiling variant.
        variant: ProfilingVariant,
        /// Train input.
        train_args: Vec<i64>,
        /// Reference input.
        ref_args: Vec<i64>,
    },
    /// Fetch the accumulated database entry for a workload's current
    /// module.
    GetProfile {
        /// A previously submitted workload.
        workload: String,
    },
    /// Merge a client-supplied profile entry into the database.
    MergeProfile {
        /// A serialized [`stride_profdb::ProfileEntry`].
        entry_text: String,
    },
    /// Service counters.
    Stats,
    /// Drain queued work and stop the daemon.
    Shutdown,
}

fn fmt_args(args: &[i64]) -> String {
    args.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_args(s: &str) -> Result<Vec<i64>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| {
            p.parse::<i64>()
                .map_err(|_| format!("bad argument `{p}` (expected integer)"))
        })
        .collect()
}

/// The `key=value` fields of a request header line.
type Fields<'a> = Vec<(&'a str, &'a str)>;

/// Splits a header line into its verb and `key=value` fields.
fn fields(header: &str) -> Result<(&str, Fields<'_>), String> {
    let mut parts = header.split_whitespace();
    let Some(verb) = parts.next() else {
        return Err("empty request".to_string());
    };
    let mut kv = Vec::new();
    for part in parts {
        let Some((k, v)) = part.split_once('=') else {
            return Err(format!("expected key=value, got `{part}`"));
        };
        kv.push((k, v));
    }
    Ok((verb, kv))
}

fn take<'a>(kv: &[(&str, &'a str)], key: &str) -> Result<&'a str, String> {
    kv.iter()
        .find(|(k, _)| *k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| format!("missing `{key}=`"))
}

impl Request {
    /// Serializes for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let text = match self {
            Request::SubmitModule { workload, text } => {
                format!("submit workload={workload}\n{text}")
            }
            Request::Profile {
                workload,
                variant,
                args,
            } => format!(
                "profile workload={workload} variant={variant} args={}",
                fmt_args(args)
            ),
            Request::Classify {
                workload,
                variant,
                args,
            } => format!(
                "classify workload={workload} variant={variant} args={}",
                fmt_args(args)
            ),
            Request::Prefetch {
                workload,
                variant,
                train_args,
                ref_args,
            } => format!(
                "prefetch workload={workload} variant={variant} train={} ref={}",
                fmt_args(train_args),
                fmt_args(ref_args)
            ),
            Request::GetProfile { workload } => format!("get-profile workload={workload}"),
            Request::MergeProfile { entry_text } => format!("merge-profile\n{entry_text}"),
            Request::Stats => "stats".to_string(),
            Request::Shutdown => "shutdown".to_string(),
        };
        text.into_bytes()
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed header (surfaced to the
    /// client as an [`ErrorKind::Proto`] error).
    pub fn from_bytes(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
        let (header, body) = match text.split_once('\n') {
            Some((h, b)) => (h, b),
            None => (text, ""),
        };
        let (verb, kv) = fields(header)?;
        let variant_of = |kv: &[(&str, &str)]| -> Result<ProfilingVariant, String> {
            take(kv, "variant")?.parse::<ProfilingVariant>()
        };
        match verb {
            "submit" => Ok(Request::SubmitModule {
                workload: take(&kv, "workload")?.to_string(),
                text: body.to_string(),
            }),
            "profile" => Ok(Request::Profile {
                workload: take(&kv, "workload")?.to_string(),
                variant: variant_of(&kv)?,
                args: parse_args(take(&kv, "args")?)?,
            }),
            "classify" => Ok(Request::Classify {
                workload: take(&kv, "workload")?.to_string(),
                variant: variant_of(&kv)?,
                args: parse_args(take(&kv, "args")?)?,
            }),
            "prefetch" => Ok(Request::Prefetch {
                workload: take(&kv, "workload")?.to_string(),
                variant: variant_of(&kv)?,
                train_args: parse_args(take(&kv, "train")?)?,
                ref_args: parse_args(take(&kv, "ref")?)?,
            }),
            "get-profile" => Ok(Request::GetProfile {
                workload: take(&kv, "workload")?.to_string(),
            }),
            "merge-profile" => Ok(Request::MergeProfile {
                entry_text: body.to_string(),
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request verb `{other}`")),
        }
    }
}

/// Typed failure categories on the wire — the client can react to the
/// kind without parsing prose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The pipeline VM aborted (fuel, wild access, ...).
    Vm,
    /// IR or profile text failed to parse.
    Parse,
    /// Structurally unusable input.
    Malformed,
    /// A fault-injection plan string was invalid.
    BadFaultPlan,
    /// The request handler panicked (isolated; the daemon keeps serving).
    Panic,
    /// The connection queue was full — retry later.
    Busy,
    /// The request itself violated the protocol.
    Proto,
    /// No such workload / profile entry.
    NotFound,
    /// The stored profile was taken on a different module version.
    Stale,
}

impl ErrorKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Vm => "vm",
            ErrorKind::Parse => "parse",
            ErrorKind::Malformed => "malformed",
            ErrorKind::BadFaultPlan => "bad-fault-plan",
            ErrorKind::Panic => "panic",
            ErrorKind::Busy => "busy",
            ErrorKind::Proto => "proto",
            ErrorKind::NotFound => "not-found",
            ErrorKind::Stale => "stale",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "vm" => ErrorKind::Vm,
            "parse" => ErrorKind::Parse,
            "malformed" => ErrorKind::Malformed,
            "bad-fault-plan" => ErrorKind::BadFaultPlan,
            "panic" => ErrorKind::Panic,
            "busy" => ErrorKind::Busy,
            "proto" => ErrorKind::Proto,
            "not-found" => ErrorKind::NotFound,
            "stale" => ErrorKind::Stale,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&PipelineError> for ErrorKind {
    fn from(e: &PipelineError) -> Self {
        match e {
            PipelineError::Vm(_) => ErrorKind::Vm,
            PipelineError::Parse(_) => ErrorKind::Parse,
            PipelineError::Malformed(_) => ErrorKind::Malformed,
            PipelineError::BadFaultPlan(_) => ErrorKind::BadFaultPlan,
        }
    }
}

impl From<&DbError> for ErrorKind {
    fn from(e: &DbError) -> Self {
        match e {
            DbError::Io(_) => ErrorKind::Malformed,
            DbError::Parse(_) => ErrorKind::Parse,
            DbError::Stale { .. } => ErrorKind::Stale,
            DbError::KeyMismatch(_) => ErrorKind::Malformed,
            DbError::NotFound { .. } => ErrorKind::NotFound,
        }
    }
}

/// A service response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success; `body` is request-specific text.
    Ok(String),
    /// Typed failure.
    Err {
        /// Failure category.
        kind: ErrorKind,
        /// Human-readable detail (may be multi-line, e.g. caret
        /// diagnostics).
        message: String,
    },
}

impl Response {
    /// Builds an error response from any typed error.
    pub fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Err {
            kind,
            message: message.into(),
        }
    }

    /// Serializes for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Response::Ok(body) => format!("ok\n{body}").into_bytes(),
            Response::Err { kind, message } => format!("err {kind}\n{message}").into_bytes(),
        }
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Returns a message when the payload is not a valid response.
    pub fn from_bytes(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "response is not UTF-8".to_string())?;
        let (header, body) = match text.split_once('\n') {
            Some((h, b)) => (h, b),
            None => (text, ""),
        };
        if header == "ok" {
            return Ok(Response::Ok(body.to_string()));
        }
        if let Some(kind_s) = header.strip_prefix("err ") {
            let kind = ErrorKind::parse(kind_s.trim())
                .ok_or_else(|| format!("unknown error kind `{kind_s}`"))?;
            return Ok(Response::Err {
                kind,
                message: body.to_string(),
            });
        }
        Err(format!("bad response header `{header}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn truncated_frames_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::SubmitModule {
                workload: "mcf".into(),
                text: "fn @main() {\n}\n".into(),
            },
            Request::Profile {
                workload: "mcf".into(),
                variant: stride_core::ProfilingVariant::EdgeCheck,
                args: vec![3, 500],
            },
            Request::Classify {
                workload: "gap".into(),
                variant: stride_core::ProfilingVariant::SampleNaiveAll,
                args: vec![],
            },
            Request::Prefetch {
                workload: "parser".into(),
                variant: stride_core::ProfilingVariant::TwoPass,
                train_args: vec![1],
                ref_args: vec![-2, 9],
            },
            Request::GetProfile {
                workload: "mcf".into(),
            },
            Request::MergeProfile {
                entry_text: "# profdb v1\nworkload x\nmodule 00ff\nruns 1\n".into(),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let back = Request::from_bytes(&req.to_bytes()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Request::from_bytes(b"").is_err());
        assert!(Request::from_bytes(b"bogus-verb").is_err());
        assert!(Request::from_bytes(b"profile workload=x").is_err());
        assert!(Request::from_bytes(b"profile workload=x variant=nope args=1").is_err());
        assert!(Request::from_bytes(b"profile workload=x variant=edge-check args=one").is_err());
        assert!(Request::from_bytes(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Ok("body\nlines\n".into()),
            Response::Ok(String::new()),
            Response::err(ErrorKind::Vm, "vm: out of fuel"),
            Response::err(ErrorKind::Busy, ""),
        ];
        for resp in responses {
            let back = Response::from_bytes(&resp.to_bytes()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn every_error_kind_round_trips() {
        for kind in [
            ErrorKind::Vm,
            ErrorKind::Parse,
            ErrorKind::Malformed,
            ErrorKind::BadFaultPlan,
            ErrorKind::Panic,
            ErrorKind::Busy,
            ErrorKind::Proto,
            ErrorKind::NotFound,
            ErrorKind::Stale,
        ] {
            assert_eq!(ErrorKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::parse("nope"), None);
    }
}
