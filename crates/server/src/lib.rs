// Library code must degrade gracefully instead of panicking; unwrap and
// expect are allowed only under cfg(test).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! The stride-profiling service: a long-running daemon that accepts
//! modules over a framed TCP protocol, runs the paper's profiling and
//! prefetching pipeline on them, and accumulates profiles across runs in
//! an on-disk [`stride_profdb::ProfileDb`].
//!
//! The design is deliberately std-only (no async runtime, no
//! serialization framework): a `TcpListener`, a bounded connection queue
//! for backpressure, and a pool of worker threads that reuse the
//! reproduction's panic-isolating execution engine
//! ([`stride_core::parallel_map_isolated`]) so a panicking request
//! degrades to a typed wire error while sibling requests complete.
//! Requests are plain text inside length-prefixed frames, auditable with
//! a hexdump.
//!
//! Determinism contract: a `profile` response carries exactly the bytes
//! that [`stride_core::run_profiling`] + [`stride_profdb::ProfileEntry`]
//! produce for the same module/variant/args, at any worker count and
//! client concurrency — the loopback integration test holds the daemon to
//! byte identity with direct pipeline calls.

pub mod client;
pub mod detector;
pub mod hints;
pub mod limiter;
pub mod proto;
pub mod queue;
pub mod router;
pub mod server;
pub mod service;

pub use client::{backoff_schedule, backoff_schedule_for, Client, RetryPolicy};
pub use detector::{FailureDetector, HealthState, ProbeOutcome};
pub use hints::{Hint, HintLog};
pub use limiter::{cost_of, AimdLimiter, Completion};
pub use proto::{
    decode_request, encode_frame, encode_request, read_frame, write_frame, ErrorKind, Request,
    RequestMeta, Response, MAX_FRAME, PROTO_VERSION,
};
pub use queue::BoundedQueue;
pub use router::{Router, RouterConfig, RouterServer};
pub use server::{Server, ServerConfig};
pub use service::{render_classification, render_speedup, Service, ServiceConfig};
