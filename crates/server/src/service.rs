//! Request handling: the daemon's state (module registry, run cache,
//! profile database) and the pure `Request -> Response` function the
//! worker pool drives.

use crate::proto::{ErrorKind, Request, RequestMeta, Response};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use stride_core::{
    classify, corrupt_ir_text, run_profiling, Classification, FaultInjector, FaultKind, Histogram,
    PipelineConfig, PipelineError, ProfilingVariant, Registry, RunCache, SpeedupOutcome,
    TraceEvent,
};
use stride_ir::{module_from_string, module_to_string, Module};
use stride_profdb::{
    decode_delta_batch, encode_delta_batch, encode_digest_table, module_hash, DbError, DiskFaults,
    ProfileDb, ProfileEntry,
};
use stride_profiling::{EdgeProfile, StrideProfile};

/// Converts the plan's disk fault kinds into the store's injectable
/// [`DiskFaults`] (later clauses win for the same kind).
fn disk_faults_of(injector: Option<&FaultInjector>) -> DiskFaults {
    let mut faults = DiskFaults::default();
    let Some(injector) = injector else {
        return faults;
    };
    for scenario in &injector.plan().scenarios {
        match scenario.kind {
            FaultKind::DiskTornWrite { at } => faults.torn_write = Some(at),
            FaultKind::DiskBitFlip { bit } => faults.bit_flip = Some(bit),
            FaultKind::DiskFsyncFail { nth } => faults.fsync_fail = Some(nth),
            FaultKind::DiskShortRead { len } => faults.short_read = Some(len),
            _ => {}
        }
    }
    faults
}

/// Daemon configuration independent of the listening socket.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Where the profile database lives.
    pub db_root: PathBuf,
    /// Per-request fuel deadline: every request's VM runs get at most
    /// this many dynamic instructions (clamped into the pipeline config,
    /// so a hostile module cannot wedge a worker).
    pub request_fuel: u64,
    /// Pipeline configuration shared by all requests.
    pub pipeline: PipelineConfig,
    /// Optional server-side fault injection (soak testing the typed
    /// error paths).
    pub injector: Option<FaultInjector>,
}

impl ServiceConfig {
    /// Defaults: database under `dir`, a 2-billion-instruction deadline,
    /// paper pipeline configuration, no fault injection.
    pub fn new(db_root: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            db_root: db_root.into(),
            request_fuel: 2_000_000_000,
            pipeline: PipelineConfig::default(),
            injector: None,
        }
    }
}

/// Monotonic service counters (the `stats` response).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    errors: AtomicU64,
}

/// Pre-registered metric handles for the request path. Updates through
/// these are lock-free atomic adds; registration (which takes the
/// registry lock and allocates) happens once at service construction.
struct ServiceMetrics {
    latency_profile: Histogram,
    latency_classify: Histogram,
    latency_prefetch: Histogram,
    retried_merges: stride_core::Counter,
    deltas_applied: stride_core::Counter,
    deltas_deduped: stride_core::Counter,
    segments_compacted: stride_core::Counter,
}

impl ServiceMetrics {
    fn new(obs: &Registry) -> Self {
        ServiceMetrics {
            latency_profile: obs.histogram("server.latency.profile.cycles"),
            latency_classify: obs.histogram("server.latency.classify.cycles"),
            latency_prefetch: obs.histogram("server.latency.prefetch.cycles"),
            retried_merges: obs.counter("server.merge.retried"),
            deltas_applied: obs.counter("repl.deltas_applied"),
            deltas_deduped: obs.counter("repl.deltas_deduped"),
            segments_compacted: obs.counter("wal.segments_compacted"),
        }
    }
}

/// The verb name a request is counted under (`server.req.<verb>`).
fn verb_of(req: &Request) -> &'static str {
    match req {
        Request::SubmitModule { .. } => "submit",
        Request::Profile { .. } => "profile",
        Request::Classify { .. } => "classify",
        Request::Prefetch { .. } => "prefetch",
        Request::GetProfile { .. } => "get-profile",
        Request::MergeProfile { .. } => "merge-profile",
        Request::SyncDelta { .. } => "sync-delta",
        Request::Gc => "gc",
        Request::Ping => "ping",
        Request::Digest => "digest",
        Request::PullDeltas => "pull-deltas",
        Request::Health => "health",
        Request::Repair => "repair",
        Request::RouteUpdate { .. } => "route-update",
        Request::Stats => "stats",
        Request::Shutdown => "shutdown",
    }
}

/// The daemon's shared state; `handle` is safe to call from any number of
/// worker threads.
pub struct Service {
    config: ServiceConfig,
    effective: PipelineConfig,
    db: Mutex<ProfileDb>,
    modules: Mutex<HashMap<String, Arc<Module>>>,
    cache: RunCache,
    counters: Counters,
    obs: Arc<Registry>,
    metrics: ServiceMetrics,
    /// High-water mark of the WAL's `segments_compacted` stat already
    /// bridged into the `wal.segments_compacted` counter (the stat is
    /// monotonic; the counter receives deltas).
    compacted_seen: AtomicU64,
}

impl Service {
    /// Opens the database and builds the service.
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] when the database root cannot be created.
    pub fn new(config: ServiceConfig) -> Result<Self, DbError> {
        let db = ProfileDb::open_with(&config.db_root, disk_faults_of(config.injector.as_ref()))?;
        let mut effective = config.pipeline;
        effective.vm.fuel = effective.vm.fuel.min(config.request_fuel);
        let obs = Arc::new(Registry::new());
        let metrics = ServiceMetrics::new(&obs);
        Ok(Service {
            effective,
            db: Mutex::new(db),
            modules: Mutex::new(HashMap::new()),
            cache: RunCache::new(),
            counters: Counters::default(),
            obs,
            metrics,
            compacted_seen: AtomicU64::new(0),
            config,
        })
    }

    /// The service's metrics registry (shared with the surrounding
    /// server, which contributes acceptor-side counters).
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The pipeline configuration requests actually run under (fuel
    /// deadline applied).
    pub fn pipeline_config(&self) -> &PipelineConfig {
        &self.effective
    }

    fn module_of(&self, workload: &str) -> Result<Arc<Module>, Response> {
        self.modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(workload)
            .cloned()
            .ok_or_else(|| {
                Response::err(
                    ErrorKind::NotFound,
                    format!("no module submitted for workload `{workload}`"),
                )
            })
    }

    /// Runs one profiling pass, applying any server-side fault plan that
    /// targets `workload`. Faulted runs bypass the run cache so clean
    /// requests never see perturbed results.
    fn profiles_for(
        &self,
        workload: &str,
        module: &Module,
        variant: ProfilingVariant,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Result<
        (
            EdgeProfile,
            StrideProfile,
            stride_profiling::FreqSource,
            u64,
        ),
        PipelineError,
    > {
        if let Some(injector) = self
            .config
            .injector
            .as_ref()
            .filter(|i| i.affects(workload))
        {
            if injector.wants_malformed_ir(workload) {
                let text = corrupt_ir_text(injector.plan().seed, &module_to_string(module));
                module_from_string(&text)?;
            }
            let mut config = *config;
            config.vm = injector.vm_overrides(workload, config.vm);
            let outcome = run_profiling(module, args, variant, &config)?;
            let (mut edge, mut stride) = (outcome.edge, outcome.stride);
            injector.apply_to_profiles(workload, &mut edge, &mut stride);
            return Ok((edge, stride, outcome.source, outcome.run.cycles));
        }
        let outcome = self.cache.profiling(module, variant, args, config)?;
        Ok((
            outcome.edge.clone(),
            outcome.stride.clone(),
            outcome.source,
            outcome.run.cycles,
        ))
    }

    /// Handles one request with no metadata (server-default deadline, no
    /// idempotency id).
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_meta(&RequestMeta::default(), req)
    }

    /// Handles one request under its metadata: the client's deadline
    /// clamps the fuel budget, and a nonzero idempotency id makes a
    /// retried `merge-profile` merge exactly once. Never panics by
    /// contract of the individual handlers; the worker pool still wraps
    /// this in `catch_unwind` so a bug degrades to an
    /// [`ErrorKind::Panic`] wire error.
    pub fn handle_meta(&self, meta: &RequestMeta, req: &Request) -> Response {
        // The request sequence number doubles as the trace event's
        // logical clock: metrics never read wall-clock time.
        let seq = self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.obs.add(&format!("server.req.{}", verb_of(req)), 1);
        let resp = self.dispatch(meta, req);
        let failed = if let Response::Err { kind, .. } = &resp {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
            self.obs.add(&format!("server.error.{kind}"), 1);
            1
        } else {
            0
        };
        self.obs.trace(TraceEvent {
            clock: seq,
            label: "server.request",
            a: seq,
            b: failed,
        });
        resp
    }

    /// The pipeline configuration one request runs under: the server's
    /// effective config, with the VM fuel further clamped to the
    /// client's deadline. Deadlines only shrink budgets.
    fn config_for(&self, meta: &RequestMeta) -> PipelineConfig {
        let mut config = self.effective;
        if let Some(fuel) = meta.deadline_fuel {
            config.vm.fuel = config.vm.fuel.min(fuel);
        }
        config
    }

    fn dispatch(&self, meta: &RequestMeta, req: &Request) -> Response {
        let config = self.config_for(meta);
        match req {
            Request::SubmitModule { workload, text } => self.submit(workload, text),
            Request::Profile {
                workload,
                variant,
                args,
            } => self.profile(workload, *variant, args, &config),
            Request::Classify {
                workload,
                variant,
                args,
            } => self.classify_req(workload, *variant, args, &config),
            Request::Prefetch {
                workload,
                variant,
                train_args,
                ref_args,
            } => self.prefetch(workload, *variant, train_args, ref_args, &config),
            Request::GetProfile { workload } => self.get_profile(workload),
            Request::MergeProfile { entry_text } => self.merge_profile(entry_text, meta.req_id),
            Request::SyncDelta { batch_text } => self.sync_delta(batch_text),
            Request::Gc => self.gc_req(),
            // Liveness probe: answer without touching the database, so a
            // probe succeeds even while the store is busy or degraded.
            Request::Ping => Response::Ok("pong\n".to_string()),
            Request::Digest => self.digest_req(),
            Request::PullDeltas => self.pull_deltas_req(),
            Request::Health => Response::err(
                ErrorKind::Malformed,
                "health is a router verb; this is a shard daemon",
            ),
            Request::Repair => Response::err(
                ErrorKind::Malformed,
                "repair is a router verb; this is a shard daemon",
            ),
            Request::RouteUpdate { .. } => Response::err(
                ErrorKind::Malformed,
                "route-update is a router verb; this is a shard daemon",
            ),
            Request::Stats => Response::Ok(self.stats_body()),
            // The server layer intercepts Shutdown before dispatch; reply
            // affirmatively anyway for direct (in-process) callers.
            Request::Shutdown => Response::Ok("shutting down\n".to_string()),
        }
    }

    /// Folds the database's WAL away (graceful-shutdown hook). Errors
    /// are ignored: a failed checkpoint just leaves redo work for the
    /// next startup's recovery.
    pub fn checkpoint(&self) {
        let db = self.db.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = db.checkpoint();
    }

    /// What startup recovery found in the database (for operator logs).
    pub fn recovery_report(&self) -> Option<stride_profdb::RecoveryReport> {
        self.db
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recovery_report()
            .cloned()
    }

    fn submit(&self, workload: &str, text: &str) -> Response {
        let module = match module_from_string(text) {
            Ok(m) => m,
            Err(e) => {
                // Caret-rendered diagnostic: line, source, position.
                return Response::err(ErrorKind::Parse, e.render(text));
            }
        };
        let hash = module_hash(&module);
        self.modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(workload.to_string(), Arc::new(module));
        Response::Ok(format!("module {hash:016x}\n"))
    }

    fn profile(
        &self,
        workload: &str,
        variant: ProfilingVariant,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Response {
        let module = match self.module_of(workload) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let (edge, stride, _, cycles) =
            match self.profiles_for(workload, &module, variant, args, config) {
                Ok(p) => p,
                Err(e) => return pipeline_err(&e),
            };
        self.metrics.latency_profile.observe(cycles);
        let entry = ProfileEntry::from_run(workload, module_hash(&module), &edge, &stride);
        let db = self.db.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = db.merge_store(&entry) {
            return db_err(&e);
        }
        // The response is the *fresh* run's entry (runs=1): deterministic
        // bytes regardless of how many runs the database has accumulated.
        Response::Ok(entry.to_text())
    }

    fn classify_req(
        &self,
        workload: &str,
        variant: ProfilingVariant,
        args: &[i64],
        config: &PipelineConfig,
    ) -> Response {
        let module = match self.module_of(workload) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let (edge, stride, source, cycles) =
            match self.profiles_for(workload, &module, variant, args, config) {
                Ok(p) => p,
                Err(e) => return pipeline_err(&e),
            };
        self.metrics.latency_classify.observe(cycles);
        let classification = classify(&module, &stride, &edge, source, &config.prefetch);
        Response::Ok(render_classification(&classification))
    }

    fn prefetch(
        &self,
        workload: &str,
        variant: ProfilingVariant,
        train_args: &[i64],
        ref_args: &[i64],
        config: &PipelineConfig,
    ) -> Response {
        let module = match self.module_of(workload) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let result = match self
            .config
            .injector
            .as_ref()
            .filter(|i| i.affects(workload))
        {
            Some(injector) => self.cache.speedup_faulted(
                &module, workload, train_args, ref_args, variant, config, injector,
            ),
            None => self
                .cache
                .speedup(&module, train_args, ref_args, variant, config),
        };
        match result {
            Ok(outcome) => {
                // Request latency in VM cycles: both measured runs. A
                // cache hit replays the same outcome, so the observation
                // is identical however the request was served.
                self.metrics.latency_prefetch.observe(
                    outcome
                        .baseline_cycles
                        .saturating_add(outcome.prefetch_cycles),
                );
                Response::Ok(render_speedup(&outcome))
            }
            Err(e) => pipeline_err(&e),
        }
    }

    fn get_profile(&self, workload: &str) -> Response {
        let module = match self.module_of(workload) {
            Ok(m) => m,
            Err(resp) => return resp,
        };
        let hash = module_hash(&module);
        let db = self.db.lock().unwrap_or_else(PoisonError::into_inner);
        match db.load(workload, hash) {
            Ok(entry) => Response::Ok(entry.to_text()),
            Err(e) => db_err(&e),
        }
    }

    fn merge_profile(&self, entry_text: &str, req_id: u64) -> Response {
        let entry = match ProfileEntry::from_text(entry_text) {
            Ok(e) => e,
            Err(e) => return db_err(&e),
        };
        // Recovery orders replay by the runs counter, so an entry that
        // contributes no runs would be indistinguishable from an
        // already-applied one.
        if entry.runs == 0 {
            return Response::err(
                ErrorKind::Malformed,
                "merge-profile entry must carry runs >= 1",
            );
        }
        // Staleness check: if the workload's module is registered, the
        // incoming entry must match its current content hash.
        if let Ok(module) = self.module_of(&entry.workload) {
            if let Err(e) = entry.check_fresh(module_hash(&module)) {
                return db_err(&e);
            }
        }
        let db = self.db.lock().unwrap_or_else(PoisonError::into_inner);
        match db.merge_store_logged(&entry, req_id) {
            Ok((merged, deduped)) => {
                let dedup_note = if deduped {
                    self.metrics.retried_merges.inc();
                    " (duplicate request id)"
                } else {
                    ""
                };
                self.bridge_wal_counters(&db);
                Response::Ok(format!("{}{dedup_note}\n", merged.summary()))
            }
            Err(e) => db_err(&e),
        }
    }

    /// Applies a replication delta batch exactly-once per delta id.
    fn sync_delta(&self, batch_text: &str) -> Response {
        let deltas = match decode_delta_batch(batch_text) {
            Ok(d) => d,
            Err(e) => return db_err(&e),
        };
        let db = self.db.lock().unwrap_or_else(PoisonError::into_inner);
        match db.apply_deltas(&deltas) {
            Ok(report) => {
                self.metrics.deltas_applied.add(report.applied as u64);
                self.metrics.deltas_deduped.add(report.deduped as u64);
                self.bridge_wal_counters(&db);
                Response::Ok(format!(
                    "applied {} deduped {}\n",
                    report.applied, report.deduped
                ))
            }
            Err(e) => db_err(&e),
        }
    }

    /// Reports the per-key digest table (anti-entropy's cheap diff).
    fn digest_req(&self) -> Response {
        let db = self.db.lock().unwrap_or_else(PoisonError::into_inner);
        match db.digest_table() {
            Ok(table) => Response::Ok(encode_digest_table(&table)),
            Err(e) => db_err(&e),
        }
    }

    /// Exports the retained pre-merge delta window as a delta batch for
    /// anti-entropy re-send to a diverged sibling.
    fn pull_deltas_req(&self) -> Response {
        let db = self.db.lock().unwrap_or_else(PoisonError::into_inner);
        let deltas = db.retained_deltas();
        Response::Ok(encode_delta_batch(&deltas))
    }

    /// Garbage-collects entries whose workload has no registered module
    /// or whose module hash is stale.
    fn gc_req(&self) -> Response {
        let live: HashMap<String, u64> = self
            .modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(w, m)| (w.clone(), module_hash(m)))
            .collect();
        let db = self.db.lock().unwrap_or_else(PoisonError::into_inner);
        match db.gc(|w, h| live.get(w) == Some(&h)) {
            Ok(removed) => {
                let mut out = format!("removed {}\n", removed.len());
                for rec in removed {
                    let _ = writeln!(out, "{} {:016x}", rec.workload, rec.module_hash);
                }
                Response::Ok(out)
            }
            Err(e) => db_err(&e),
        }
    }

    /// Forwards the WAL's monotonic `segments_compacted` stat into the
    /// metrics registry as counter deltas (idempotent under races: the
    /// `fetch_max` hands the gap to exactly one caller).
    fn bridge_wal_counters(&self, db: &ProfileDb) {
        let compacted = db.wal_stats().segments_compacted;
        let prev = self.compacted_seen.fetch_max(compacted, Ordering::Relaxed);
        if compacted > prev {
            self.metrics.segments_compacted.add(compacted - prev);
        }
    }

    fn stats_body(&self) -> String {
        let cache = self.cache.stats();
        let (db_entries, db_runs, dedup_hits, wal_pending, wal, recovery) = {
            let db = self.db.lock().unwrap_or_else(PoisonError::into_inner);
            self.bridge_wal_counters(&db);
            let records = db.list().unwrap_or_default();
            let runs: u64 = records.iter().map(|r| r.runs).sum();
            (
                records.len(),
                runs,
                db.dedup_hits(),
                db.wal_pending(),
                db.wal_stats(),
                db.recovery_report().cloned(),
            )
        };
        let modules = self
            .modules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        let mut out = format!(
            "requests {}\nerrors {}\nmodules {}\ndb-entries {}\ndb-runs {}\ndedup-hits {}\nwal-pending {}\ncache-hits {}\ncache-misses {}\n",
            self.counters.requests.load(Ordering::Relaxed),
            self.counters.errors.load(Ordering::Relaxed),
            modules,
            db_entries,
            db_runs,
            dedup_hits,
            if wal_pending { 1 } else { 0 },
            cache.hits,
            cache.misses,
        );
        let _ = write!(
            out,
            "wal-appends {}\nwal-syncs {}\nwal-checkpoints {}\nwal-seals {}\nwal-live-segments {}\n",
            wal.appends, wal.syncs, wal.checkpoints, wal.seals, wal.live_segments,
        );
        if let Some(r) = recovery {
            let _ = write!(
                out,
                "recovery-replayed {}\nrecovery-quarantined {}\n",
                r.replayed, r.quarantined,
            );
        }
        // Structured metrics (per-verb counters, per-error-kind tallies,
        // latency histograms, acceptor-side counters) follow the legacy
        // key-value block; each line is `counter|gauge|histogram|trace ...`.
        out.push_str(&self.obs.snapshot_text());
        out
    }
}

fn pipeline_err(e: &PipelineError) -> Response {
    Response::err(ErrorKind::from(e), e.to_string())
}

fn db_err(e: &DbError) -> Response {
    Response::err(ErrorKind::from(e), e.to_string())
}

/// Deterministic text rendering of a classification (the `classify`
/// response body). Stable across worker counts and request interleavings.
pub fn render_classification(c: &Classification) -> String {
    let mut out = format!(
        "loads {} filtered-low-freq {} filtered-low-trip {} no-pattern {}\n",
        c.loads.len(),
        c.filtered_low_freq,
        c.filtered_low_trip,
        c.no_pattern
    );
    for l in &c.loads {
        let _ = writeln!(
            out,
            "load {} {} class={} stride={} tc={:.2} freq={}",
            l.func, l.site, l.class, l.dominant_stride, l.trip_count, l.freq
        );
    }
    out
}

/// Deterministic text rendering of a speedup outcome (the `prefetch`
/// response body).
pub fn render_speedup(o: &SpeedupOutcome) -> String {
    format!(
        "baseline-cycles {}\nprefetch-cycles {}\nspeedup {:.6}\nprefetch-sites {}\nprefetches-inserted {}\nprefetches-issued {}\n",
        o.baseline_cycles,
        o.prefetch_cycles,
        o.speedup,
        o.classification.loads.len(),
        o.report.prefetches_inserted,
        o.prefetch_mem.prefetches_issued,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stride_ir::{ModuleBuilder, Operand};

    fn tmp_service(tag: &str) -> Service {
        let root =
            std::env::temp_dir().join(format!("stride-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Service::new(ServiceConfig::new(root)).unwrap()
    }

    /// Repeated strided sweeps over a big array (profilable, prefetchable).
    fn sweep_text() -> String {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("arr", 1 << 18);
        let f = mb.declare_function("main", 1);
        let mut fb = mb.function(f);
        let base = fb.global_addr(g);
        let sum = fb.mov(0i64);
        fb.counted_loop(fb.param(0), |fb, _| {
            fb.counted_loop(2000i64, |fb, i| {
                let off = fb.mul(i, 64i64);
                let a = fb.add(base, off);
                let (v, _) = fb.load(a, 0);
                fb.bin_to(sum, stride_ir::BinOp::Add, sum, v);
            });
        });
        fb.ret(Some(Operand::Reg(sum)));
        mb.set_entry(f);
        module_to_string(&mb.finish())
    }

    fn ok_body(resp: Response) -> String {
        match resp {
            Response::Ok(body) => body,
            Response::Err { kind, message, .. } => panic!("unexpected error {kind}: {message}"),
        }
    }

    #[test]
    fn submit_profile_get_round_trip() {
        let svc = tmp_service("roundtrip");
        let text = sweep_text();
        let body = ok_body(svc.handle(&Request::SubmitModule {
            workload: "sweep".into(),
            text: text.clone(),
        }));
        assert!(body.starts_with("module "), "{body}");

        let profile = Request::Profile {
            workload: "sweep".into(),
            variant: ProfilingVariant::EdgeCheck,
            args: vec![3],
        };
        let first = ok_body(svc.handle(&profile));
        assert!(first.contains("runs 1"), "{first}");
        // Same request twice: identical fresh-run bytes...
        assert_eq!(ok_body(svc.handle(&profile)), first);
        // ...while the database accumulated both runs.
        let stored = ok_body(svc.handle(&Request::GetProfile {
            workload: "sweep".into(),
        }));
        assert!(stored.contains("runs 2"), "{stored}");
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }

    #[test]
    fn classify_and_prefetch_report() {
        let svc = tmp_service("classify");
        ok_body(svc.handle(&Request::SubmitModule {
            workload: "sweep".into(),
            text: sweep_text(),
        }));
        let c = ok_body(svc.handle(&Request::Classify {
            workload: "sweep".into(),
            variant: ProfilingVariant::EdgeCheck,
            args: vec![4],
        }));
        assert!(c.starts_with("loads "), "{c}");
        let p = ok_body(svc.handle(&Request::Prefetch {
            workload: "sweep".into(),
            variant: ProfilingVariant::EdgeCheck,
            train_args: vec![3],
            ref_args: vec![5],
        }));
        assert!(p.contains("speedup "), "{p}");
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }

    #[test]
    fn unknown_workload_is_not_found() {
        let svc = tmp_service("notfound");
        let resp = svc.handle(&Request::GetProfile {
            workload: "nope".into(),
        });
        assert!(
            matches!(
                resp,
                Response::Err {
                    kind: ErrorKind::NotFound,
                    ..
                }
            ),
            "{resp:?}"
        );
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }

    #[test]
    fn bad_ir_is_a_located_parse_error() {
        let svc = tmp_service("badir");
        let resp = svc.handle(&Request::SubmitModule {
            workload: "x".into(),
            text: "fn @main( {".into(),
        });
        let Response::Err { kind, message, .. } = resp else {
            panic!("expected parse error")
        };
        assert_eq!(kind, ErrorKind::Parse);
        assert!(message.contains('^'), "caret diagnostic: {message}");
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }

    #[test]
    fn fuel_deadline_is_enforced() {
        let root = std::env::temp_dir().join(format!("stride-service-fuel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut cfg = ServiceConfig::new(root);
        cfg.request_fuel = 10_000; // far below what the sweep needs
        let svc = Service::new(cfg).unwrap();
        ok_body(svc.handle(&Request::SubmitModule {
            workload: "sweep".into(),
            text: sweep_text(),
        }));
        let resp = svc.handle(&Request::Profile {
            workload: "sweep".into(),
            variant: ProfilingVariant::EdgeCheck,
            args: vec![3],
        });
        assert!(
            matches!(
                resp,
                Response::Err {
                    kind: ErrorKind::Vm,
                    ..
                }
            ),
            "{resp:?}"
        );
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }

    #[test]
    fn server_side_faults_surface_as_typed_errors() {
        let root =
            std::env::temp_dir().join(format!("stride-service-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut cfg = ServiceConfig::new(root);
        let plan = stride_core::FaultPlan::parse("seed=7;malformed-ir@sweep").unwrap();
        cfg.injector = Some(FaultInjector::new(plan));
        let svc = Service::new(cfg).unwrap();
        ok_body(svc.handle(&Request::SubmitModule {
            workload: "sweep".into(),
            text: sweep_text(),
        }));
        let resp = svc.handle(&Request::Profile {
            workload: "sweep".into(),
            variant: ProfilingVariant::EdgeCheck,
            args: vec![3],
        });
        assert!(
            matches!(
                resp,
                Response::Err {
                    kind: ErrorKind::Parse,
                    ..
                }
            ),
            "{resp:?}"
        );
        // A workload the plan does not target still profiles cleanly.
        ok_body(svc.handle(&Request::SubmitModule {
            workload: "clean".into(),
            text: sweep_text(),
        }));
        ok_body(svc.handle(&Request::Profile {
            workload: "clean".into(),
            variant: ProfilingVariant::EdgeCheck,
            args: vec![3],
        }));
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }

    #[test]
    fn stale_merge_is_rejected() {
        let svc = tmp_service("stale");
        ok_body(svc.handle(&Request::SubmitModule {
            workload: "sweep".into(),
            text: sweep_text(),
        }));
        let entry = ProfileEntry {
            workload: "sweep".into(),
            module_hash: 0xdead_beef,
            runs: 1,
            edge_tables: vec![],
            stride: StrideProfile::new(),
        };
        let resp = svc.handle(&Request::MergeProfile {
            entry_text: entry.to_text(),
        });
        assert!(
            matches!(
                resp,
                Response::Err {
                    kind: ErrorKind::Stale,
                    ..
                }
            ),
            "{resp:?}"
        );
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }

    #[test]
    fn stats_count_requests() {
        let svc = tmp_service("stats");
        let _ = svc.handle(&Request::GetProfile {
            workload: "nope".into(),
        });
        let body = ok_body(svc.handle(&Request::Stats));
        assert!(body.contains("requests 2"), "{body}");
        assert!(body.contains("errors 1"), "{body}");
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }

    #[test]
    fn stats_expose_structured_metrics() {
        let svc = tmp_service("metrics");
        ok_body(svc.handle(&Request::SubmitModule {
            workload: "sweep".into(),
            text: sweep_text(),
        }));
        ok_body(svc.handle(&Request::Profile {
            workload: "sweep".into(),
            variant: ProfilingVariant::EdgeCheck,
            args: vec![2],
        }));
        let _ = svc.handle(&Request::GetProfile {
            workload: "nope".into(),
        });
        let body = ok_body(svc.handle(&Request::Stats));
        // WAL counters: the profile request appended nothing (merge_store
        // is unlogged) but the handle reports zeros rather than omitting.
        assert!(body.contains("wal-appends "), "{body}");
        assert!(body.contains("wal-syncs "), "{body}");
        assert!(body.contains("recovery-replayed 0"), "{body}");
        // Per-verb and per-error-kind counters.
        assert!(body.contains("counter server.req.submit 1"), "{body}");
        assert!(body.contains("counter server.req.profile 1"), "{body}");
        assert!(body.contains("counter server.error.not-found 1"), "{body}");
        // The profile request landed one observation in its latency
        // histogram, denominated in VM cycles.
        assert!(
            body.contains("histogram server.latency.profile.cycles count 1 sum "),
            "{body}"
        );
        // Per-request trace events with the sequence number as clock.
        assert!(body.contains("trace 0 server.request 0 0"), "{body}");
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }

    #[test]
    fn duplicate_merge_counts_as_retried() {
        let svc = tmp_service("retried");
        ok_body(svc.handle(&Request::SubmitModule {
            workload: "sweep".into(),
            text: sweep_text(),
        }));
        let entry_text = ok_body(svc.handle(&Request::Profile {
            workload: "sweep".into(),
            variant: ProfilingVariant::EdgeCheck,
            args: vec![2],
        }));
        let meta = RequestMeta {
            req_id: 77,
            ..RequestMeta::default()
        };
        let req = Request::MergeProfile {
            entry_text: entry_text.clone(),
        };
        ok_body(svc.handle_meta(&meta, &req));
        let dup = ok_body(svc.handle_meta(&meta, &req));
        assert!(dup.contains("duplicate request id"), "{dup}");
        let body = ok_body(svc.handle(&Request::Stats));
        assert!(body.contains("counter server.merge.retried 1"), "{body}");
        let _ = std::fs::remove_dir_all(&svc.config.db_root);
    }
}
