//! Hinted handoff: a durable, checksummed per-replica spool of the
//! delta merges a dead replica missed.
//!
//! When the failure detector declares a replica dead, the router stops
//! forwarding its deltas and spools them here instead — one segmented
//! WAL chain per replica (the exact record format `profdb` uses, so
//! torn tails and bit flips are detected the same way). On revival the
//! router drains the log *in append order* through the normal
//! `sync-delta` path; the replica's WAL req-id dedup absorbs any
//! replays, so a router crash mid-drain merely re-sends a prefix.
//!
//! The spool replaces the old bounded in-memory lag queue, which
//! silently dropped its oldest delta under pressure. The hint log never
//! drops: at capacity the *caller's merge is refused whole* with a
//! typed `handoff-full`, so an acknowledged merge can no longer lose a
//! replica silently. Capacity is counted in hints, not bytes, so the
//! refusal point is deterministic under any payload mix.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use stride_profdb::{scan_chain, DbError, DiskFaults, ScanItem, SegmentConfig, Wal, WalRecord};

/// One spooled delta: the idempotency id and pre-merge entry text the
/// router would have forwarded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hint {
    /// The delta's idempotency id (router-stamped, never 0).
    pub req_id: u64,
    /// The delta's serialized [`stride_profdb::ProfileEntry`].
    pub entry_text: String,
}

/// A durable hint spool for one replica.
#[derive(Debug)]
pub struct HintLog {
    root: PathBuf,
    wal: Wal,
    /// In-memory mirror of the undrained suffix, in append order.
    pending: VecDeque<Hint>,
    cap: usize,
    seal_bytes: u64,
    /// Checksum-corrupt records skipped at open (each is a delta the
    /// drain cannot redeliver; anti-entropy repair re-converges it).
    corrupt_dropped: u64,
}

impl HintLog {
    /// Opens (creating if needed) the hint log under `root`, replaying
    /// the chain to rebuild the pending queue. A torn active-log tail
    /// is truncated (a crash mid-spool was never acknowledged);
    /// checksum-corrupt records are counted and skipped.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on filesystem trouble.
    pub fn open(root: &Path, cap: usize) -> Result<HintLog, DbError> {
        std::fs::create_dir_all(root)
            .map_err(|e| DbError::Io(format!("{}: {e}", root.display())))?;
        let chain = scan_chain(root, &DiskFaults::default())?;
        let mut pending = VecDeque::new();
        let mut corrupt_dropped = 0u64;
        for seg in &chain {
            for item in &seg.scan.items {
                match item {
                    ScanItem::Record { record, .. } => {
                        if record.kind == stride_profdb::RecordKind::Entry {
                            pending.push_back(Hint {
                                req_id: record.req_id,
                                entry_text: String::from_utf8_lossy(&record.payload).into_owned(),
                            });
                        }
                    }
                    ScanItem::Corrupt { .. } => corrupt_dropped += 1,
                    ScanItem::TornTail { offset } => {
                        if seg.is_active() {
                            Wal::truncate_to(&root.join(&seg.name), *offset)?;
                        }
                    }
                }
            }
        }
        let wal = Wal::open_append(root, pending.len() as u64, DiskFaults::default())?;
        Ok(HintLog {
            root: root.to_path_buf(),
            wal,
            pending,
            cap,
            seal_bytes: SegmentConfig::default().seal_bytes,
            corrupt_dropped,
        })
    }

    /// Undrained hints.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is spooled.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// True when one more spool would exceed capacity.
    pub fn is_full(&self) -> bool {
        self.pending.len() >= self.cap
    }

    /// Capacity in hints.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Corrupt records dropped at open.
    pub fn corrupt_dropped(&self) -> u64 {
        self.corrupt_dropped
    }

    /// Durably spools one delta (append + fsync before returning), then
    /// seals the active segment if it outgrew the roll threshold.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when the log is at capacity (the caller
    /// must refuse the merge with `handoff-full`) or on disk trouble.
    pub fn spool(&mut self, req_id: u64, entry_text: &str) -> Result<(), DbError> {
        if self.is_full() {
            return Err(DbError::Io(format!(
                "{}: hint log at capacity ({} hint(s))",
                self.root.display(),
                self.cap
            )));
        }
        self.wal.append(&WalRecord::entry(req_id, entry_text))?;
        self.wal.sync()?;
        self.pending.push_back(Hint {
            req_id,
            entry_text: entry_text.to_string(),
        });
        if self.wal.len() > self.seal_bytes {
            self.wal.seal()?;
        }
        Ok(())
    }

    /// The oldest undrained hint.
    pub fn front(&self) -> Option<&Hint> {
        self.pending.front()
    }

    /// Marks the front hint delivered (in memory only — the durable log
    /// is truncated when the queue fully drains, so a crash mid-drain
    /// re-sends a prefix that req-id dedup absorbs). Once empty, the
    /// chain is checkpointed away.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when the empty-queue checkpoint fails;
    /// the hints are already delivered, so the caller may ignore it
    /// (the next open replays them into dedup).
    pub fn pop_delivered(&mut self) -> Result<(), DbError> {
        self.pending.pop_front();
        if self.pending.is_empty() {
            self.wal.checkpoint(&[])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hintlog-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn spools_survive_reopen_in_order() {
        let root = tmpdir("reopen");
        {
            let mut log = HintLog::open(&root, 16).unwrap();
            for i in 1..=5u64 {
                log.spool(i, &format!("entry {i}")).unwrap();
            }
            assert_eq!(log.len(), 5);
        }
        let log = HintLog::open(&root, 16).unwrap();
        assert_eq!(log.len(), 5);
        let ids: Vec<u64> = log.pending.iter().map(|h| h.req_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn capacity_refuses_instead_of_dropping() {
        let root = tmpdir("cap");
        let mut log = HintLog::open(&root, 2).unwrap();
        log.spool(1, "a").unwrap();
        log.spool(2, "b").unwrap();
        assert!(log.is_full());
        assert!(log.spool(3, "c").is_err());
        // Nothing was dropped to make room: the original two remain.
        assert_eq!(log.len(), 2);
        assert_eq!(log.front().unwrap().req_id, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn full_drain_truncates_partial_drain_replays_prefix() {
        let root = tmpdir("drain");
        let mut log = HintLog::open(&root, 8).unwrap();
        for i in 1..=4u64 {
            log.spool(i, "x").unwrap();
        }
        // Partial drain: deliver two, then "crash" (drop the handle).
        log.pop_delivered().unwrap();
        log.pop_delivered().unwrap();
        assert_eq!(log.len(), 2);
        drop(log);
        // Reopen replays the whole spool (prefix re-send is absorbed by
        // the replica's req-id dedup).
        let mut log = HintLog::open(&root, 8).unwrap();
        assert_eq!(log.len(), 4);
        for _ in 0..4 {
            log.pop_delivered().unwrap();
        }
        assert!(log.is_empty());
        drop(log);
        // Full drain checkpointed the chain away.
        let log = HintLog::open(&root, 8).unwrap();
        assert!(log.is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_active_tail_is_truncated_at_open() {
        use std::io::Write;
        let root = tmpdir("torn");
        {
            let mut log = HintLog::open(&root, 8).unwrap();
            log.spool(1, "good").unwrap();
        }
        // A crash mid-spool leaves half a record.
        let rec = stride_profdb::encode_record(&WalRecord::entry(2, "half"));
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join(stride_profdb::WAL_FILE))
            .unwrap();
        f.write_all(&rec[..rec.len() / 2]).unwrap();
        drop(f);
        let mut log = HintLog::open(&root, 8).unwrap();
        assert_eq!(log.len(), 1, "torn record never acknowledged, so cut");
        // The log stays appendable after the cut.
        log.spool(3, "after").unwrap();
        drop(log);
        let log = HintLog::open(&root, 8).unwrap();
        let ids: Vec<u64> = log.pending.iter().map(|h| h.req_id).collect();
        assert_eq!(ids, vec![1, 3]);
        let _ = std::fs::remove_dir_all(&root);
    }
}
