//! Adaptive admission control: an AIMD concurrency limiter measured in
//! VM-cycle cost, replacing bounded-queue-or-busy as the overload
//! policy.
//!
//! Each admitted request holds a permit of its verb's *nominal cost* —
//! heavy pipeline verbs (profile, prefetch, classify, submit) weigh
//! orders of magnitude more than metadata reads, so one in-flight
//! profile displaces many stats calls, matching their real resource
//! footprints. The admitted-cost ceiling adapts: every successful
//! completion raises it **additively**, every overload signal (a
//! deadline-missed VM abort, or a downstream shed) cuts it
//! **multiplicatively** — the TCP-congestion-avoidance shape that
//! converges to fairness and keeps queue depth bounded instead of
//! collapsing under 2x sustained capacity.
//!
//! Requests over the ceiling are shed immediately with a typed `busy` +
//! retry-after — early, cheap refusal at the door instead of a timeout
//! after queueing. Shedding is load-dependent and therefore not part of
//! the byte-determinism contract; the limiter publishes only gauges and
//! counters, never bytes in logical outputs.

use crate::proto::Request;
use std::sync::atomic::{AtomicU64, Ordering};

/// Nominal admission cost of a heavy pipeline verb, in VM cycles
/// (roughly one test-scale profiling run).
pub const HEAVY_COST: u64 = 1_000_000;
/// Nominal admission cost of a metadata verb (parse + file I/O only).
pub const LIGHT_COST: u64 = 10_000;

/// The nominal VM-cycle cost a request's permit holds.
pub fn cost_of(req: &Request) -> u64 {
    match req {
        Request::Profile { .. }
        | Request::Classify { .. }
        | Request::Prefetch { .. }
        | Request::SubmitModule { .. } => HEAVY_COST,
        _ => LIGHT_COST,
    }
}

/// How an admitted request ended, as the limiter cares: did it finish
/// normally, or did it signal overload?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// Finished (ok or a typed error unrelated to load).
    Done,
    /// Missed its deadline or was shed downstream: cut the ceiling.
    Overload,
}

/// An AIMD admission limiter shared by a server's workers.
#[derive(Debug)]
pub struct AimdLimiter {
    /// Admitted-cost ceiling.
    limit: AtomicU64,
    /// Cost currently admitted.
    in_flight: AtomicU64,
    min_limit: u64,
    max_limit: u64,
    /// Additive raise per successful completion.
    raise: u64,
}

impl AimdLimiter {
    /// Builds a limiter starting (and bottoming out) at `min_limit`
    /// cost units, ceilinged at `max_limit`, raising by `raise` per
    /// success. The floor always admits at least one heavy request, so
    /// the limiter can never deadlock a quiet server.
    pub fn new(min_limit: u64, max_limit: u64, raise: u64) -> AimdLimiter {
        let min_limit = min_limit.max(HEAVY_COST);
        AimdLimiter {
            limit: AtomicU64::new(min_limit),
            in_flight: AtomicU64::new(0),
            min_limit,
            max_limit: max_limit.max(min_limit),
            raise,
        }
    }

    /// A limiter sized for the loopback test/default deployment: floor
    /// of four heavy requests, ceiling of sixty-four, raising by one
    /// light cost per success (reaches the ceiling after ~6k successes,
    /// recovers from a halving in ~400).
    pub fn default_sized() -> AimdLimiter {
        AimdLimiter::new(4 * HEAVY_COST, 64 * HEAVY_COST, LIGHT_COST)
    }

    /// Tries to admit `cost`; on refusal the caller sheds with a typed
    /// `busy`. A request is always admitted when nothing is in flight,
    /// whatever its cost, so a single huge request cannot starve.
    pub fn try_acquire(&self, cost: u64) -> bool {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur > 0 && cur.saturating_add(cost) > self.limit.load(Ordering::Relaxed) {
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + cost,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Releases an admitted request's permit and adapts the ceiling.
    pub fn release(&self, cost: u64, completion: Completion) {
        // Saturating: a release can never underflow even if pairing is
        // violated by a panicking handler path.
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(cost);
            match self.in_flight.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        match completion {
            Completion::Done => {
                let cur = self.limit.load(Ordering::Relaxed);
                if cur < self.max_limit {
                    self.limit
                        .store((cur + self.raise).min(self.max_limit), Ordering::Relaxed);
                }
            }
            Completion::Overload => self.cut(),
        }
    }

    /// Multiplicative cut (halve, clamped to the floor) — also called
    /// directly when a shed happens before admission elsewhere.
    pub fn cut(&self) {
        let cur = self.limit.load(Ordering::Relaxed);
        self.limit
            .store((cur / 2).max(self.min_limit), Ordering::Relaxed);
    }

    /// Current admitted-cost ceiling.
    pub fn limit(&self) -> u64 {
        self.limit.load(Ordering::Relaxed)
    }

    /// Cost currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_raises_and_cuts() {
        let lim = AimdLimiter::new(2 * HEAVY_COST, 8 * HEAVY_COST, HEAVY_COST);
        assert!(lim.try_acquire(HEAVY_COST));
        assert!(lim.try_acquire(HEAVY_COST));
        // At the ceiling: the third heavy request sheds.
        assert!(!lim.try_acquire(HEAVY_COST));
        // Success raises additively.
        lim.release(HEAVY_COST, Completion::Done);
        assert_eq!(lim.limit(), 3 * HEAVY_COST);
        assert!(lim.try_acquire(HEAVY_COST));
        // Overload cuts multiplicatively, clamped at the floor.
        lim.release(HEAVY_COST, Completion::Overload);
        assert_eq!(lim.limit(), 2 * HEAVY_COST);
        lim.release(HEAVY_COST, Completion::Overload);
        assert_eq!(lim.limit(), 2 * HEAVY_COST, "never below the floor");
        assert_eq!(lim.in_flight(), 0);
    }

    #[test]
    fn empty_limiter_always_admits_one() {
        let lim = AimdLimiter::new(HEAVY_COST, HEAVY_COST, 0);
        // Ten times the ceiling, but nothing in flight: admitted.
        assert!(lim.try_acquire(10 * HEAVY_COST));
        assert!(!lim.try_acquire(LIGHT_COST));
        lim.release(10 * HEAVY_COST, Completion::Done);
        assert!(lim.try_acquire(LIGHT_COST));
    }

    #[test]
    fn ceiling_is_clamped_to_max() {
        let lim = AimdLimiter::new(HEAVY_COST, 2 * HEAVY_COST, HEAVY_COST);
        for _ in 0..10 {
            assert!(lim.try_acquire(LIGHT_COST));
            lim.release(LIGHT_COST, Completion::Done);
        }
        assert_eq!(lim.limit(), 2 * HEAVY_COST);
    }

    #[test]
    fn verb_costs_split_heavy_from_light() {
        assert_eq!(
            cost_of(&Request::Profile {
                workload: "x".into(),
                variant: stride_core::ProfilingVariant::EdgeCheck,
                args: vec![],
            }),
            HEAVY_COST
        );
        assert_eq!(cost_of(&Request::Stats), LIGHT_COST);
        assert_eq!(cost_of(&Request::Ping), LIGHT_COST);
        assert_eq!(
            cost_of(&Request::MergeProfile {
                entry_text: String::new()
            }),
            LIGHT_COST
        );
    }
}
