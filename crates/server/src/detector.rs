//! Failure detector: a pure, seeded per-replica health state machine.
//!
//! The router probes every replica with a lightweight `ping` on a
//! logical-clock schedule (probe cadence counted in request seqnos, not
//! wall time, so chaos campaigns stay jobs-invariant) and feeds each
//! probe result to this detector. A replica walks
//! `alive -> suspect(misses) -> dead` as probes fail, and any
//! successful probe snaps it back to `alive`; the `dead -> alive` edge
//! is reported as a revival so the router can run its recovery routine
//! (module re-teach, hint-log drain, anti-entropy repair).
//!
//! The suspect->dead threshold is derived per replica from the detector
//! seed with splitmix64, so thresholds differ across replicas (no
//! lockstep mass declarations from one shared default) yet every run of
//! the same seed — at any `--jobs` level, or across a router restart
//! that snapshots and restores mid-suspicion — transitions identically.
//! The detector holds no clocks and does no I/O: state is data and
//! transitions are pure, which is what makes the restart-equivalence
//! property testable at all.

/// splitmix64 stream increment.
const MIX_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64 finalizer (shared idiom with the router's id stamper).
fn mix_final(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One replica's health as the detector sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Answering probes.
    Alive,
    /// Missed `misses` consecutive probes (1 <= misses < threshold).
    Suspect(u32),
    /// Missed its seeded threshold of consecutive probes; the router
    /// spools its deltas to the hint log instead of forwarding.
    Dead,
}

impl HealthState {
    /// Stable one-word label for stats bodies and health reports.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Alive => "alive",
            HealthState::Suspect(_) => "suspect",
            HealthState::Dead => "dead",
        }
    }
}

/// What a probe result changed — the edges the router acts on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// No state edge crossed (alive stayed alive, suspicion deepened,
    /// dead stayed dead).
    Unchanged,
    /// First missed probe: alive -> suspect.
    Suspected,
    /// Miss count reached the replica's threshold: suspect -> dead.
    Died,
    /// A dead replica answered: dead -> alive; the router must re-teach
    /// modules, drain the hint log, and schedule a repair round.
    Revived,
}

/// The per-replica health table for one cluster topology.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    seed: u64,
    /// `state[shard][replica]`.
    state: Vec<Vec<HealthState>>,
}

impl FailureDetector {
    /// Builds a detector for a topology given as replicas-per-shard,
    /// with every replica initially alive.
    pub fn new(seed: u64, replicas_per_shard: &[usize]) -> FailureDetector {
        FailureDetector {
            seed,
            state: replicas_per_shard
                .iter()
                .map(|&n| vec![HealthState::Alive; n])
                .collect(),
        }
    }

    /// Consecutive missed probes after which this replica is declared
    /// dead: seeded per replica into 2..=4 so declarations are neither
    /// one-flaky-probe trigger-happy nor lockstep across the cluster.
    pub fn dead_after(&self, shard: usize, replica: usize) -> u32 {
        let key = self
            .seed
            .wrapping_add(MIX_GAMMA)
            .wrapping_add(((shard as u64) << 8) ^ replica as u64);
        2 + (mix_final(key) % 3) as u32
    }

    /// Current health of one replica.
    pub fn state(&self, shard: usize, replica: usize) -> HealthState {
        self.state[shard][replica]
    }

    /// True when the replica is declared dead (hint-spool its deltas).
    pub fn is_dead(&self, shard: usize, replica: usize) -> bool {
        self.state[shard][replica] == HealthState::Dead
    }

    /// Records a missed probe (transport error or typed refusal).
    pub fn probe_missed(&mut self, shard: usize, replica: usize) -> ProbeOutcome {
        let threshold = self.dead_after(shard, replica);
        let slot = &mut self.state[shard][replica];
        match *slot {
            HealthState::Alive => {
                if threshold <= 1 {
                    *slot = HealthState::Dead;
                    ProbeOutcome::Died
                } else {
                    *slot = HealthState::Suspect(1);
                    ProbeOutcome::Suspected
                }
            }
            HealthState::Suspect(misses) => {
                let misses = misses + 1;
                if misses >= threshold {
                    *slot = HealthState::Dead;
                    ProbeOutcome::Died
                } else {
                    *slot = HealthState::Suspect(misses);
                    ProbeOutcome::Unchanged
                }
            }
            HealthState::Dead => ProbeOutcome::Unchanged,
        }
    }

    /// Records a successful probe (or any successful forwarded call —
    /// evidence of life is evidence of life regardless of the verb).
    pub fn probe_ok(&mut self, shard: usize, replica: usize) -> ProbeOutcome {
        let slot = &mut self.state[shard][replica];
        match *slot {
            HealthState::Alive => ProbeOutcome::Unchanged,
            HealthState::Suspect(_) => {
                *slot = HealthState::Alive;
                ProbeOutcome::Unchanged
            }
            HealthState::Dead => {
                *slot = HealthState::Alive;
                ProbeOutcome::Revived
            }
        }
    }

    /// Serializes the health table (one `shard replica state [misses]`
    /// line per replica, sorted) so a restarting router can resume
    /// mid-suspicion instead of forgetting accumulated misses.
    pub fn snapshot_text(&self) -> String {
        let mut out = String::new();
        for (k, row) in self.state.iter().enumerate() {
            for (r, st) in row.iter().enumerate() {
                match st {
                    HealthState::Alive => out.push_str(&format!("{k} {r} alive\n")),
                    HealthState::Suspect(m) => out.push_str(&format!("{k} {r} suspect {m}\n")),
                    HealthState::Dead => out.push_str(&format!("{k} {r} dead\n")),
                }
            }
        }
        out
    }

    /// Rebuilds a detector from [`FailureDetector::snapshot_text`]
    /// output. Replicas absent from the snapshot stay alive; lines for
    /// replicas outside the topology are rejected.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed snapshot line.
    pub fn restore_text(
        seed: u64,
        replicas_per_shard: &[usize],
        text: &str,
    ) -> Result<FailureDetector, String> {
        let mut d = FailureDetector::new(seed, replicas_per_shard);
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let parts: Vec<&str> = line.split_whitespace().collect();
            let (k, r, st) = match parts.as_slice() {
                [k, r, "alive"] => (k, r, HealthState::Alive),
                [k, r, "dead"] => (k, r, HealthState::Dead),
                [k, r, "suspect", m] => {
                    let m: u32 = m
                        .parse()
                        .map_err(|_| format!("bad miss count in snapshot line `{line}`"))?;
                    (k, r, HealthState::Suspect(m))
                }
                _ => return Err(format!("bad detector snapshot line `{line}`")),
            };
            let k: usize = k
                .parse()
                .map_err(|_| format!("bad shard in snapshot line `{line}`"))?;
            let r: usize = r
                .parse()
                .map_err(|_| format!("bad replica in snapshot line `{line}`"))?;
            let slot = d
                .state
                .get_mut(k)
                .and_then(|row| row.get_mut(r))
                .ok_or_else(|| format!("snapshot names unknown replica s{k}r{r}"))?;
            *slot = st;
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One probe event of a replayable schedule.
    #[derive(Clone, Copy)]
    enum Ev {
        Miss(usize, usize),
        Ok(usize, usize),
    }

    fn apply(d: &mut FailureDetector, ev: Ev) -> ProbeOutcome {
        match ev {
            Ev::Miss(k, r) => d.probe_missed(k, r),
            Ev::Ok(k, r) => d.probe_ok(k, r),
        }
    }

    #[test]
    fn thresholds_are_seeded_and_bounded() {
        let d = FailureDetector::new(0x5eed, &[2, 2, 2]);
        let mut distinct = std::collections::HashSet::new();
        for k in 0..3 {
            for r in 0..2 {
                let t = d.dead_after(k, r);
                assert!((2..=4).contains(&t), "threshold {t} out of range");
                distinct.insert(t);
                // Same seed, same replica, same threshold — every call.
                assert_eq!(t, FailureDetector::new(0x5eed, &[2, 2, 2]).dead_after(k, r));
            }
        }
        // The spread exists (not every replica shares one threshold).
        assert!(distinct.len() > 1, "all thresholds collapsed: {distinct:?}");
    }

    #[test]
    fn alive_suspect_dead_revived_walk() {
        let mut d = FailureDetector::new(7, &[1]);
        let threshold = d.dead_after(0, 0);
        assert_eq!(d.state(0, 0), HealthState::Alive);
        assert_eq!(d.probe_missed(0, 0), ProbeOutcome::Suspected);
        for m in 2..threshold {
            assert_eq!(d.probe_missed(0, 0), ProbeOutcome::Unchanged);
            assert_eq!(d.state(0, 0), HealthState::Suspect(m));
        }
        assert_eq!(d.probe_missed(0, 0), ProbeOutcome::Died);
        assert!(d.is_dead(0, 0));
        // Dead stays dead under further misses.
        assert_eq!(d.probe_missed(0, 0), ProbeOutcome::Unchanged);
        // First success after death is the revival edge.
        assert_eq!(d.probe_ok(0, 0), ProbeOutcome::Revived);
        assert_eq!(d.state(0, 0), HealthState::Alive);
        // A success mid-suspicion clears the miss count silently.
        assert_eq!(d.probe_missed(0, 0), ProbeOutcome::Suspected);
        assert_eq!(d.probe_ok(0, 0), ProbeOutcome::Unchanged);
        assert_eq!(d.state(0, 0), HealthState::Alive);
    }

    /// Satellite: seeded table-driven transitions are identical across
    /// `--jobs` (pure function of the event sequence — exercised by
    /// replaying the same schedule on worker threads) and across router
    /// restarts mid-suspicion (snapshot/restore at every cut point).
    #[test]
    fn schedules_replay_identically_across_threads_and_restarts() {
        let seed: u64 = 0x00d1_57ab;
        let topo = [2usize, 2, 2];
        // A seeded schedule long enough to cross every edge repeatedly.
        let mut x = seed;
        let schedule: Vec<Ev> = (0..96)
            .map(|_| {
                x = x.wrapping_add(MIX_GAMMA);
                let v = mix_final(x);
                let k = (v % 3) as usize;
                let r = ((v >> 8) % 2) as usize;
                if v & 0x1_0000 == 0 {
                    Ev::Miss(k, r)
                } else {
                    Ev::Ok(k, r)
                }
            })
            .collect();

        let run_all = || {
            let mut d = FailureDetector::new(seed, &topo);
            let outcomes: Vec<ProbeOutcome> = schedule.iter().map(|&e| apply(&mut d, e)).collect();
            (outcomes, d.snapshot_text())
        };
        let (outcomes, final_snap) = run_all();

        // "Across --jobs": replay the identical schedule on 4 threads;
        // every thread must observe the same outcomes and final table.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(run_all)).collect();
            for h in handles {
                let (o, s) = h.join().unwrap();
                assert_eq!(o, outcomes);
                assert_eq!(s, final_snap);
            }
        });

        // "Across restarts mid-suspicion": cut the schedule at every
        // point, snapshot, restore into a fresh detector, replay the
        // tail — the final table must match the uninterrupted run.
        for cut in 0..=schedule.len() {
            let mut d = FailureDetector::new(seed, &topo);
            for &e in &schedule[..cut] {
                apply(&mut d, e);
            }
            let snap = d.snapshot_text();
            let mut restored = FailureDetector::restore_text(seed, &topo, &snap).unwrap();
            for &e in &schedule[cut..] {
                apply(&mut restored, e);
            }
            assert_eq!(restored.snapshot_text(), final_snap, "cut at {cut}");
        }
    }

    #[test]
    fn snapshot_round_trips_and_rejects_garbage() {
        let mut d = FailureDetector::new(3, &[2, 1]);
        d.probe_missed(0, 1);
        d.probe_missed(1, 0);
        d.probe_missed(1, 0);
        d.probe_missed(1, 0);
        d.probe_missed(1, 0);
        let snap = d.snapshot_text();
        let back = FailureDetector::restore_text(3, &[2, 1], &snap).unwrap();
        assert_eq!(back.snapshot_text(), snap);
        assert!(FailureDetector::restore_text(3, &[2, 1], "0 0 bogus\n").is_err());
        assert!(FailureDetector::restore_text(3, &[2, 1], "9 0 alive\n").is_err());
        assert!(FailureDetector::restore_text(3, &[2, 1], "0 0 suspect x\n").is_err());
    }
}
