//! A bounded multi-producer multi-consumer queue (mutex + condvar): the
//! daemon's backpressure point between the acceptor and the worker pool.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue. `try_push` refuses instead of blocking when
/// full (the acceptor turns that into a `busy` wire error); `pop` blocks
/// until an item arrives or the queue is closed *and* drained — close is
/// a drain-then-stop signal, not an abort.
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    cond: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `cap` items (`cap == 0` refuses
    /// everything).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            cap,
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    ///
    /// # Errors
    ///
    /// The rejected item, so the caller can respond to its originator.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.lock();
        if s.closed || s.items.len() >= self.cap {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.cond.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: new pushes are refused, waiting `pop`s drain the
    /// backlog and then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(2));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<i32>::new(2));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q = Arc::new(BoundedQueue::new(64));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let mut v = p * 100 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
