//! A blocking, resilient client for the daemon: one TCP connection,
//! framed request/response round trips, deterministic retry with
//! exponential backoff, reconnect-on-reset, and idempotency ids that
//! make a retried `merge-profile` merge exactly once.

use crate::proto::{
    encode_frame, encode_request, read_frame, ErrorKind, Request, RequestMeta, Response,
};
use std::io;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Retry configuration: how many attempts a [`Client::call`] gets and
/// how the waits between them grow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single backoff, in milliseconds.
    pub max_delay_ms: u64,
    /// Seed for the deterministic jitter. The same seed produces a
    /// byte-identical schedule on every run, at any parallelism — chaos
    /// campaigns stay reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 2_000,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that fails fast (single attempt, no waits).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// The full backoff schedule a policy produces: one wait (milliseconds)
/// before each retry, so `max_attempts - 1` entries. Pure — this *is*
/// the schedule [`Client::call`] sleeps through, exposed so tests can
/// assert determinism without a server.
///
/// Equivalent to [`backoff_schedule_for`] with request id 0 (the
/// id-less form every non-merge request uses).
pub fn backoff_schedule(policy: &RetryPolicy) -> Vec<u64> {
    backoff_schedule_for(policy, 0)
}

/// The backoff schedule for one specific request: wait `i` is
/// `min(base << i, max)`, half fixed and half scaled by a
/// `splitmix64(seed ^ req_id ^ (i+1))` fraction. Folding the request's
/// idempotency id into the jitter decorrelates the retry herd a shed
/// event creates — every client got the same `retry-after` hint, but
/// each request re-arrives at its own offset instead of re-stampeding
/// the limiter in lockstep. Pure and byte-identical at any `--jobs`
/// for equal `(policy, req_id)`.
pub fn backoff_schedule_for(policy: &RetryPolicy, req_id: u64) -> Vec<u64> {
    let retries = policy.max_attempts.saturating_sub(1);
    (0..retries)
        .map(|i| {
            let exp = policy
                .base_delay_ms
                .saturating_mul(1u64 << i.min(32))
                .min(policy.max_delay_ms);
            let jitter = splitmix64_mix(policy.jitter_seed ^ req_id ^ (u64::from(i) + 1)) % 1_000;
            exp / 2 + exp / 2 * jitter / 1_000 + exp % 2
        })
        .collect()
}

/// One connection to a running daemon. Requests are pipelinable in
/// principle, but [`Client::call`] keeps the simple lockstep discipline:
/// send one frame, read one frame (retrying per the policy).
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    policy: RetryPolicy,
    /// Deadline (fuel budget) attached to every request's meta.
    deadline_fuel: Option<u64>,
    /// Idempotency-id stream state.
    id_state: u64,
    /// Calls made (drives the id stream and the dup-request fault).
    calls: u64,
    /// Injected fault: duplicate the request frame of the `nth` call.
    dup_request_nth: Option<u64>,
    /// Human-readable retry/reconnect events from the most recent call.
    trace: Vec<String>,
    /// Optional `client.retries` counter: bumped once per retry attempt
    /// (the router shares one across its backend clients).
    retry_counter: Option<stride_core::Counter>,
}

fn connect_stream(addr: SocketAddr) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    // Request/response ping-pong over small frames: Nagle only adds
    // latency here, never useful batching.
    stream.set_nodelay(true)?;
    Ok(stream)
}

impl Client {
    /// Connects to a daemon at `addr` with the default retry policy.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Self::connect_with(addr, RetryPolicy::default())
    }

    /// Connects with an explicit retry policy.
    ///
    /// # Errors
    ///
    /// Connection failures (the initial connect is not retried — a
    /// daemon that is not there yet is the caller's loop to write).
    pub fn connect_with<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let stream = connect_stream(addr)?;
        // Ids must differ across clients even with equal jitter seeds,
        // or two clients' distinct merges would wrongly deduplicate:
        // fold in the OS-assigned ephemeral port.
        let local = stream
            .local_addr()
            .map(|a| u64::from(a.port()))
            .unwrap_or(0);
        Ok(Client {
            addr,
            stream: Some(stream),
            policy,
            deadline_fuel: None,
            id_state: splitmix64_mix(policy.jitter_seed ^ (local << 17) ^ 0x1d_c0de),
            calls: 0,
            dup_request_nth: None,
            trace: Vec::new(),
            retry_counter: None,
        })
    }

    /// Attaches a deadline (VM fuel budget) to every subsequent request.
    pub fn set_deadline_fuel(&mut self, fuel: Option<u64>) {
        self.deadline_fuel = fuel;
    }

    /// Overrides the idempotency-id stream (tests pin ids this way).
    pub fn set_id_state(&mut self, state: u64) {
        self.id_state = state;
    }

    /// Injected fault: send the `nth` (1-based) call's request frame
    /// twice — duplicate delivery the server's idempotency ids must
    /// absorb.
    pub fn set_dup_request_nth(&mut self, nth: Option<u64>) {
        self.dup_request_nth = nth;
    }

    /// Retry/reconnect events from the most recent [`Client::call`]
    /// (empty when it succeeded first try).
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Attaches a metrics counter bumped once per retry attempt (the
    /// `client.retries` observability counter).
    pub fn set_retry_counter(&mut self, counter: Option<stride_core::Counter>) {
        self.retry_counter = counter;
    }

    fn next_req_id(&mut self) -> u64 {
        // splitmix64 stream; 0 is reserved for "no id".
        loop {
            self.id_state = self.id_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let id = splitmix64_mix(self.id_state);
            if id != 0 {
                return id;
            }
        }
    }

    /// Sends `req` and waits for the daemon's response, retrying
    /// transport failures and `busy` shedding per the policy (with
    /// reconnect between attempts). A `merge-profile` request carries an
    /// idempotency id that is stable across its retries, so a duplicate
    /// arrival merges exactly once.
    ///
    /// # Errors
    ///
    /// Transport failures that survive the whole retry budget (the
    /// message carries the attempt count; [`Client::trace`] has the
    /// per-attempt detail). Server-side failures other than `busy` are
    /// *not* `Err`: they arrive as [`Response::Err`] with a typed
    /// [`crate::ErrorKind`].
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.trace.clear();
        self.calls += 1;
        let meta = RequestMeta {
            // Only merges get ids: they are the requests whose retry
            // must not double-count. (An id on every request would cost
            // WAL traffic for no dedup value.)
            req_id: match req {
                Request::MergeProfile { .. } => self.next_req_id(),
                _ => 0,
            },
            deadline_fuel: self.deadline_fuel,
        };
        let payload = encode_request(&meta, req);
        let duplicate = self.dup_request_nth == Some(self.calls);
        let schedule = backoff_schedule_for(&self.policy, meta.req_id);
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                if let Some(counter) = &self.retry_counter {
                    counter.inc();
                }
                let base_wait = schedule
                    .get(attempt as usize - 1)
                    .copied()
                    .unwrap_or(self.policy.max_delay_ms);
                // A server-provided retry-after hint extends (never
                // shortens) the backoff.
                let wait = match &last_err {
                    Some(e) => match parse_retry_after(e) {
                        Some(hint) => base_wait.max(hint),
                        None => base_wait,
                    },
                    None => base_wait,
                };
                std::thread::sleep(std::time::Duration::from_millis(wait));
            }
            match self.attempt(&payload, duplicate) {
                Ok(resp) => {
                    // `busy` (shed load), `unavailable` (dead shard, may
                    // come back), and `handoff-full` (hint log draining)
                    // are the transient server answers: all retry with
                    // the server's hint honoured.
                    if let Response::Err {
                        kind:
                            kind @ (ErrorKind::Busy | ErrorKind::Unavailable | ErrorKind::HandoffFull),
                        message,
                        retry_after_ms,
                        ..
                    } = &resp
                    {
                        if attempt + 1 < self.policy.max_attempts {
                            self.trace.push(format!(
                                "attempt {}: {kind} ({message}), retry-after {:?} ms",
                                attempt + 1,
                                retry_after_ms
                            ));
                            last_err = Some(busy_as_err(*retry_after_ms));
                            // Busy answers close nothing server-side, but
                            // shed connections are per-accept: reconnect.
                            self.stream = None;
                            continue;
                        }
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.trace
                        .push(format!("attempt {}: {} ({})", attempt + 1, e, e.kind()));
                    self.stream = None; // reconnect next attempt
                    last_err = Some(e);
                }
            }
        }
        let detail = self.trace.join("; ");
        Err(io::Error::new(
            last_err.map(|e| e.kind()).unwrap_or(io::ErrorKind::Other),
            format!(
                "retries exhausted after {} attempt(s): {detail}",
                self.policy.max_attempts
            ),
        ))
    }

    /// One send/receive attempt over the current (or a fresh) stream.
    fn attempt(&mut self, payload: &[u8], duplicate: bool) -> io::Result<Response> {
        if self.stream.is_none() {
            self.stream = Some(connect_stream(self.addr)?);
            self.trace.push(format!("reconnected to {}", self.addr));
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(io::Error::other("no connection"));
        };
        let frame = encode_frame(payload)?;
        if duplicate {
            // Duplicate delivery: the same request frame twice in one
            // write. Both responses are read below so the lockstep
            // discipline survives.
            let mut twice = Vec::with_capacity(frame.len() * 2);
            twice.extend_from_slice(&frame);
            twice.extend_from_slice(&frame);
            stream.write_all(&twice)?;
        } else {
            stream.write_all(&frame)?;
        }
        stream.flush()?;
        let payload = read_frame(stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let resp = Response::from_bytes(&payload)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?;
        if duplicate {
            // Drain the duplicate's response; the first answer wins.
            let _ = read_frame(stream)?;
        }
        Ok(resp)
    }
}

/// Encodes a busy response as an io::Error whose message carries the
/// retry-after hint (so the backoff loop can honour it uniformly).
fn busy_as_err(retry_after_ms: Option<u64>) -> io::Error {
    match retry_after_ms {
        Some(ms) => io::Error::other(format!("server busy; retry-after={ms}")),
        None => io::Error::other("server busy"),
    }
}

fn parse_retry_after(e: &io::Error) -> Option<u64> {
    let text = e.to_string();
    let at = text.find("retry-after=")?;
    let rest = &text[at + "retry-after=".len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 10,
            max_delay_ms: 100,
            jitter_seed: 42,
        };
        let a = backoff_schedule(&policy);
        let b = backoff_schedule(&policy);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 5);
        for (i, &wait) in a.iter().enumerate() {
            let exp = (10u64 << i).min(100);
            assert!(wait >= exp / 2, "wait {wait} below half-floor of {exp}");
            assert!(wait <= exp + 1, "wait {wait} above cap {exp}");
        }
        // A different seed jitters differently (overwhelmingly likely
        // over 5 slots).
        let other = backoff_schedule(&RetryPolicy {
            jitter_seed: 43,
            ..policy
        });
        assert_ne!(a, other);
    }

    #[test]
    fn no_retries_schedule_is_empty() {
        assert!(backoff_schedule(&RetryPolicy::no_retries()).is_empty());
    }

    #[test]
    fn per_request_jitter_decorrelates_but_stays_pure() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 10,
            max_delay_ms: 100,
            jitter_seed: 42,
        };
        // Id 0 is exactly the legacy schedule.
        assert_eq!(backoff_schedule_for(&policy, 0), backoff_schedule(&policy));
        // Same (policy, req_id) is byte-identical across calls and
        // across threads — pure, so trivially jobs-invariant.
        let a = backoff_schedule_for(&policy, 0xfeed_beef);
        let b = std::thread::spawn(move || backoff_schedule_for(&policy, 0xfeed_beef))
            .join()
            .unwrap();
        assert_eq!(a, b);
        // Different requests retry at different offsets (the anti-herd
        // property), within the same bounds as the base schedule.
        let c = backoff_schedule_for(&policy, 0xfeed_beef + 1);
        assert_ne!(a, c);
        for (i, &wait) in a.iter().enumerate() {
            let exp = (10u64 << i).min(100);
            assert!(wait >= exp / 2 && wait <= exp + 1, "wait {wait} vs {exp}");
        }
    }

    #[test]
    fn retry_after_hints_parse() {
        let e = busy_as_err(Some(75));
        assert_eq!(parse_retry_after(&e), Some(75));
        let e = busy_as_err(None);
        assert_eq!(parse_retry_after(&e), None);
    }
}
