//! A blocking client for the daemon: one TCP connection, framed
//! request/response round trips. This is all `stridectl` needs.

use crate::proto::{read_frame, write_frame, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a running daemon. Requests are pipelinable in
/// principle, but [`Client::call`] keeps the simple lockstep discipline:
/// send one frame, read one frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response ping-pong over small frames: Nagle only adds
        // latency here, never useful batching.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends `req` and waits for the daemon's response.
    ///
    /// # Errors
    ///
    /// Transport failures, a server that hung up mid-exchange, or an
    /// unparseable response frame. Server-side failures are *not* `Err`:
    /// they arrive as [`Response::Err`] with a typed [`crate::ErrorKind`].
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.to_bytes())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::from_bytes(&payload)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }
}
