//! Router integration: key-range sharding, merge replication across a
//! shard's replicas, and graceful degradation when a whole shard dies.

use std::collections::HashMap;
use stride_profdb::{ProfileEntry, ShardMap};
use stride_profiling::StrideProfile;
use stride_server::{
    Client, ErrorKind, Request, Response, RetryPolicy, RouterConfig, RouterServer, Server,
    ServerConfig, ServiceConfig,
};

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("stride-router-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Boots `shards × replicas` daemons and a router over them. Returns
/// (router, backends, roots).
fn boot_cluster(
    tag: &str,
    shards: usize,
    replicas: usize,
) -> (RouterServer, Vec<Vec<Server>>, Vec<std::path::PathBuf>) {
    let mut backends = Vec::new();
    let mut topology = Vec::new();
    let mut roots = Vec::new();
    for k in 0..shards {
        let mut row = Vec::new();
        let mut addrs = Vec::new();
        for r in 0..replicas {
            let root = tmp_root(&format!("{tag}-s{k}r{r}"));
            roots.push(root.clone());
            let server = Server::start(ServerConfig::loopback(ServiceConfig::new(root)))
                .expect("start backend");
            addrs.push(server.addr().to_string());
            row.push(server);
        }
        backends.push(row);
        topology.push(addrs);
    }
    let router = RouterServer::start(RouterConfig::loopback(topology)).expect("start router");
    (router, backends, roots)
}

fn entry_text(workload: &str, module_hash: u64) -> String {
    ProfileEntry {
        workload: workload.into(),
        module_hash,
        runs: 1,
        edge_tables: vec![vec![5, 0, 3]],
        stride: StrideProfile::new(),
    }
    .to_text()
}

/// Parses each `== shard K replica R ... ==` stats section into its
/// `key value` integer map.
fn stats_sections(body: &str) -> HashMap<(u32, u32), HashMap<String, u64>> {
    let mut sections = HashMap::new();
    let mut current: Option<(u32, u32)> = None;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("== shard ") {
            let mut parts = rest.split_whitespace();
            let k: u32 = parts.next().unwrap().parse().unwrap();
            assert_eq!(parts.next(), Some("replica"));
            let r: u32 = parts.next().unwrap().parse().unwrap();
            current = Some((k, r));
            sections.insert((k, r), HashMap::new());
            continue;
        }
        if line.starts_with("== ") {
            current = None;
            continue;
        }
        let (Some(key), Some((k, v))) = (current, line.split_once(' ')) else {
            continue;
        };
        if let Ok(n) = v.parse::<u64>() {
            sections.get_mut(&key).unwrap().insert(k.to_string(), n);
        }
    }
    sections
}

#[test]
fn merges_replicate_to_every_replica_of_the_owning_shard() {
    let (router, backends, roots) = boot_cluster("repl", 3, 2);
    let mut client = Client::connect(router.addr()).unwrap();

    // Spread keys across shards; the golden ShardMap tells us the owner.
    let map = ShardMap::new(3);
    let keys: Vec<(String, u64)> = (0..9u64).map(|i| (format!("wl{i}"), 0x1000 + i)).collect();
    let mut per_shard = vec![0u64; 3];
    for (w, h) in &keys {
        per_shard[map.shard_of(w, *h) as usize] += 1;
        let resp = client
            .call(&Request::MergeProfile {
                entry_text: entry_text(w, *h),
            })
            .unwrap();
        assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    }
    assert!(
        per_shard.iter().all(|&n| n > 0),
        "keys missed a shard: {per_shard:?}"
    );

    let Response::Ok(body) = client.call(&Request::Stats).unwrap() else {
        panic!("stats failed")
    };
    assert!(body.contains("counter router.forwarded 9"), "{body}");
    let sections = stats_sections(&body);
    for k in 0..3u32 {
        for r in 0..2u32 {
            let s = &sections[&(k, r)];
            assert_eq!(
                s["db-entries"], per_shard[k as usize],
                "shard {k} replica {r} entry count"
            );
            // Replication delivered every owned merge to this replica.
            assert!(
                body.contains(&format!("lag shard={k} replica={r} queued=0")),
                "{body}"
            );
        }
    }

    let resp = client.call(&Request::Shutdown).unwrap();
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    router.join();
    for row in backends {
        for b in row {
            b.join();
        }
    }
    for root in roots {
        let _ = std::fs::remove_dir_all(root);
    }
}

/// Satellite: a replica outage spools merges as durable hints; when the
/// spool fills, the router refuses the merge *whole* with a typed
/// `handoff-full` instead of silently dropping, and a revived replica
/// drains the spool in order and converges.
#[test]
fn full_hint_spool_refuses_merges_typed_and_drains_on_revival() {
    let hint_root = tmp_root("hints-full");
    let root0 = tmp_root("hints-full-s0r0");
    let backend = Server::start(ServerConfig::loopback(ServiceConfig::new(root0.clone())))
        .expect("start backend");
    let topology = vec![vec![backend.addr().to_string()]];
    let router = RouterServer::start(RouterConfig {
        hint_root: Some(hint_root.clone()),
        hint_cap: 2,
        ..RouterConfig::loopback(topology)
    })
    .expect("start router");
    let mut client = Client::connect_with(router.addr(), RetryPolicy::no_retries()).unwrap();

    // Take the only replica down; merges can no longer be applied live.
    backend.shutdown_and_join();

    // The first two merges fit the spool: refused as unavailable (no
    // live apply) but kept as durable hints, not dropped.
    for i in 0..2u64 {
        let resp = client
            .call(&Request::MergeProfile {
                entry_text: entry_text(&format!("wl{i}"), 0x3000 + i),
            })
            .unwrap();
        let Response::Err { kind, .. } = resp else {
            panic!("dead replica acked a merge: {resp:?}")
        };
        assert_eq!(kind, ErrorKind::Unavailable);
    }

    // The third finds the spool at capacity: typed refusal, applied
    // nowhere, with the shard named and a retry hint.
    let overflow = entry_text("wl-overflow", 0x3abc);
    let resp = client
        .call(&Request::MergeProfile {
            entry_text: overflow.clone(),
        })
        .unwrap();
    let Response::Err {
        kind,
        shard,
        retry_after_ms,
        ..
    } = resp
    else {
        panic!("overflow merge not refused: {resp:?}")
    };
    assert_eq!(kind, ErrorKind::HandoffFull);
    assert_eq!(shard, Some(0), "handoff-full must name the shard");
    assert!(retry_after_ms.is_some(), "handoff-full must hint a retry");

    let Response::Ok(body) = client.call(&Request::Stats).unwrap() else {
        panic!("stats failed")
    };
    assert!(body.contains("lag shard=0 replica=0 queued=2"), "{body}");
    assert!(body.contains("counter router.handoff_refused 1"), "{body}");

    // Revival: a replacement daemon on a fresh port self-announces via
    // route-update (what `strided --announce` sends). The router drains
    // the spool in order; the replacement converges on the spooled
    // merges and the once-refused merge now applies cleanly.
    let replacement = Server::start(ServerConfig::loopback(ServiceConfig::new(root0.clone())))
        .expect("start replacement");
    let resp = client
        .call(&Request::RouteUpdate {
            shard: 0,
            replica: 0,
            addr: replacement.addr().to_string(),
        })
        .unwrap();
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    let resp = client
        .call(&Request::MergeProfile {
            entry_text: overflow,
        })
        .unwrap();
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");

    let Response::Ok(body) = client.call(&Request::Stats).unwrap() else {
        panic!("stats failed")
    };
    assert!(body.contains("lag shard=0 replica=0 queued=0"), "{body}");
    let sections = stats_sections(&body);
    assert_eq!(
        sections[&(0, 0)]["db-entries"],
        3,
        "spooled + retried merges all landed: {body}"
    );

    let resp = client.call(&Request::Shutdown).unwrap();
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    router.join();
    replacement.join();
    let _ = std::fs::remove_dir_all(hint_root);
    let _ = std::fs::remove_dir_all(root0);
}

/// Tentpole: divergent replicas (one missed a delta the other holds in
/// its retention window) converge byte-identically after a `repair`
/// round, with no operator involvement beyond asking for the round.
#[test]
fn repair_round_heals_divergent_replicas() {
    let (router, backends, roots) = boot_cluster("repair", 1, 2);
    let mut client = Client::connect(router.addr()).unwrap();

    // Seed both replicas through the router so their stores agree.
    let resp = client
        .call(&Request::MergeProfile {
            entry_text: entry_text("base", 0x4000),
        })
        .unwrap();
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");

    // Diverge replica 0 behind the router's back: a delta applied only
    // there (as if replica 1 missed a replication delivery).
    let batch = stride_profdb::encode_delta_batch(&[stride_profdb::DeltaRecord {
        req_id: 0xd1ff,
        entry_text: entry_text("drifted", 0x4001),
    }]);
    let mut direct = Client::connect(backends[0][0].addr()).unwrap();
    let resp = direct
        .call(&Request::SyncDelta { batch_text: batch })
        .unwrap();
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    // Release the direct connection: a held-open socket would pin a
    // backend worker past shutdown.
    drop(direct);

    // One repair round detects the digest mismatch and cross-sends the
    // retained window; dedup absorbs the overlap.
    let Response::Ok(body) = client.call(&Request::Repair).unwrap() else {
        panic!("repair failed")
    };
    assert!(
        body.contains("repair shard=0 divergent=true"),
        "divergence missed: {body}"
    );
    let Response::Ok(body) = client.call(&Request::Repair).unwrap() else {
        panic!("repair failed")
    };
    assert!(
        body.contains("repair shard=0 divergent=false"),
        "repair did not converge: {body}"
    );

    let Response::Ok(body) = client.call(&Request::Stats).unwrap() else {
        panic!("stats failed")
    };
    let sections = stats_sections(&body);
    assert_eq!(sections[&(0, 0)]["db-entries"], 2, "{body}");
    assert_eq!(sections[&(0, 1)]["db-entries"], 2, "{body}");

    let resp = client.call(&Request::Shutdown).unwrap();
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    router.join();
    for row in backends {
        for b in row {
            b.join();
        }
    }
    for root in roots {
        let _ = std::fs::remove_dir_all(root);
    }
}

#[test]
fn dead_shard_sheds_its_key_range_only() {
    let (router, backends, roots) = boot_cluster("dead", 3, 1);
    let mut client = Client::connect_with(router.addr(), RetryPolicy::no_retries()).unwrap();

    // Kill shard 1 entirely.
    let map = ShardMap::new(3);
    for (k, row) in backends.into_iter().enumerate() {
        for b in row {
            if k == 1 {
                b.shutdown_and_join();
            } else {
                // Keep serving; shut down at the end of the test.
                std::mem::forget(b);
            }
        }
    }

    let mut hit_dead = 0;
    let mut hit_live = 0;
    for i in 0..12u64 {
        let (w, h) = (format!("wl{i}"), 0x2000 + i);
        let resp = client
            .call(&Request::MergeProfile {
                entry_text: entry_text(&w, h),
            })
            .unwrap();
        if map.shard_of(&w, h) == 1 {
            hit_dead += 1;
            let Response::Err {
                kind,
                retry_after_ms,
                shard,
                ..
            } = resp
            else {
                panic!("dead shard answered {resp:?}")
            };
            assert_eq!(kind, ErrorKind::Unavailable);
            assert_eq!(shard, Some(1), "unavailable must name the dead shard");
            assert!(retry_after_ms.is_some(), "unavailable must hint a retry");
        } else {
            hit_live += 1;
            assert!(
                matches!(resp, Response::Ok(_)),
                "live shard degraded: {resp:?}"
            );
        }
    }
    assert!(hit_dead > 0 && hit_live > 0, "key spread missed a case");

    let Response::Ok(body) = client.call(&Request::Stats).unwrap() else {
        panic!("stats failed")
    };
    assert!(
        body.contains(&format!("counter router.shed_unavailable {hit_dead}")),
        "{body}"
    );

    // Shutdown fans out to the surviving backends and stops the router.
    let resp = client.call(&Request::Shutdown).unwrap();
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    router.join();
    for root in roots {
        let _ = std::fs::remove_dir_all(root);
    }
}
