//! Loopback integration test: a real `strided` daemon on an ephemeral
//! port, eight concurrent clients, and byte-identity between every wire
//! response and the equivalent direct `stride_core` pipeline call — the
//! service must add *nothing* to the reproduction's numbers, at any
//! worker count and client concurrency.

use stride_prefetch::core::{
    classify, measure_speedup, run_profiling, PipelineConfig, ProfilingVariant,
};
use stride_prefetch::ir::module_to_string;
use stride_prefetch::profdb::{module_hash, ProfileEntry};
use stride_prefetch::server::{
    render_classification, render_speedup, Client, ErrorKind, Request, Response, Server,
    ServerConfig, ServiceConfig,
};
use stride_prefetch::workloads::{workload_by_name, Scale};

fn ok_body(resp: Response) -> String {
    match resp {
        Response::Ok(body) => body,
        Response::Err { kind, message, .. } => panic!("unexpected error [{kind}]: {message}"),
    }
}

#[test]
fn eight_concurrent_clients_match_direct_pipeline_byte_for_byte() {
    let w = workload_by_name("mcf", Scale::Test).expect("known workload");
    let config = PipelineConfig::default();

    // Ground truth straight from the pipeline, with no daemon involved.
    let out = run_profiling(
        &w.module,
        &w.train_args,
        ProfilingVariant::EdgeCheck,
        &config,
    )
    .expect("direct profiling succeeds");
    let expected_profile =
        ProfileEntry::from_run(w.name, module_hash(&w.module), &out.edge, &out.stride).to_text();
    let expected_classify = render_classification(&classify(
        &w.module,
        &out.stride,
        &out.edge,
        out.source,
        &config.prefetch,
    ));
    let expected_prefetch = render_speedup(
        &measure_speedup(
            &w.module,
            &w.train_args,
            &w.ref_args,
            ProfilingVariant::EdgeCheck,
            &config,
        )
        .expect("direct speedup succeeds"),
    );

    let db_root = std::env::temp_dir().join(format!("server-loopback-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&db_root);
    let mut server_config = ServerConfig::loopback(ServiceConfig::new(db_root.clone()));
    server_config.workers = 8;
    let server = Server::start(server_config).expect("daemon starts");
    let addr = server.addr();

    let mut setup = Client::connect(addr).expect("connect");
    let body = ok_body(
        setup
            .call(&Request::SubmitModule {
                workload: w.name.to_string(),
                text: module_to_string(&w.module),
            })
            .expect("submit round trip"),
    );
    assert!(body.starts_with("module "), "{body}");

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let w = &w;
                let expected_profile = &expected_profile;
                let expected_classify = &expected_classify;
                let expected_prefetch = &expected_prefetch;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    for _ in 0..ROUNDS {
                        let got = ok_body(
                            client
                                .call(&Request::Profile {
                                    workload: w.name.to_string(),
                                    variant: ProfilingVariant::EdgeCheck,
                                    args: w.train_args.clone(),
                                })
                                .expect("profile round trip"),
                        );
                        assert_eq!(&got, expected_profile, "profile bytes diverged");

                        let got = ok_body(
                            client
                                .call(&Request::Classify {
                                    workload: w.name.to_string(),
                                    variant: ProfilingVariant::EdgeCheck,
                                    args: w.train_args.clone(),
                                })
                                .expect("classify round trip"),
                        );
                        assert_eq!(&got, expected_classify, "classify bytes diverged");

                        let got = ok_body(
                            client
                                .call(&Request::Prefetch {
                                    workload: w.name.to_string(),
                                    variant: ProfilingVariant::EdgeCheck,
                                    train_args: w.train_args.clone(),
                                    ref_args: w.ref_args.clone(),
                                })
                                .expect("prefetch round trip"),
                        );
                        assert_eq!(&got, expected_prefetch, "prefetch bytes diverged");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // Every profile request above merged one run into the database.
    let accumulated = ok_body(
        setup
            .call(&Request::GetProfile {
                workload: w.name.to_string(),
            })
            .expect("get-profile round trip"),
    );
    let entry = ProfileEntry::from_text(&accumulated).expect("db entry parses");
    assert_eq!(entry.runs, (CLIENTS * ROUNDS) as u64, "run accumulation");

    // Unknown workloads answer with a typed error, not a dropped
    // connection.
    let resp = setup
        .call(&Request::GetProfile {
            workload: "nonesuch".to_string(),
        })
        .expect("round trip");
    assert!(
        matches!(
            resp,
            Response::Err {
                kind: ErrorKind::NotFound,
                ..
            }
        ),
        "{resp:?}"
    );

    let stats = ok_body(setup.call(&Request::Stats).expect("stats round trip"));
    assert!(stats.contains("requests "), "{stats}");

    let bye = ok_body(setup.call(&Request::Shutdown).expect("shutdown round trip"));
    assert!(bye.contains("shutting down"), "{bye}");
    server.join();
    let _ = std::fs::remove_dir_all(&db_root);
}
