//! Negative-case table tests for the IR parser: one case per diagnostic
//! kind, pinning the exact 1-based line and column and the caret
//! rendering. The column must point at the offending token even when
//! that token shares a prefix with (or duplicates) an earlier, innocent
//! token on the same line.

use stride_prefetch::ir::{instr_from_string, module_from_string, ParseError};

/// One parser rejection: the module text, the expected error line, the
/// token the caret must sit under (`None` pins column 1 for diagnostics
/// with no quotable source fragment), and a required message substring.
struct Case {
    name: &'static str,
    source: String,
    line: usize,
    col_token: Option<&'static str>,
    msg: &'static str,
}

/// Wraps one instruction line into a well-formed single-block module;
/// the instruction sits on line 4 at indentation 4.
fn with_instr(instr: &str) -> String {
    format!(
        "entry fn0\nfunc fn0 main(params=0, regs=4) entry=b0 {{\nb0:\n    {instr}\n    ret\n}}\n"
    )
}

/// Wraps one terminator line into a well-formed module (line 4).
fn with_term(term: &str) -> String {
    format!("entry fn0\nfunc fn0 main(params=0, regs=4) entry=b0 {{\nb0:\n    {term}\n}}\n")
}

/// The expected 1-based column: first occurrence of `col_token` within
/// the error line, or 1 when the diagnostic has nothing to point at.
fn expected_col(case: &Case) -> usize {
    match case.col_token {
        None => 1,
        Some(tok) => {
            let line_text = case
                .source
                .lines()
                .nth(case.line - 1)
                .unwrap_or_else(|| panic!("{}: line {} missing", case.name, case.line));
            line_text
                .find(tok)
                .unwrap_or_else(|| panic!("{}: token `{tok}` not on line {}", case.name, case.line))
                + 1
        }
    }
}

fn check(case: &Case, e: &ParseError) {
    assert_eq!(e.line, case.line, "{}: line ({e})", case.name);
    assert!(
        e.message.contains(case.msg),
        "{}: message `{}` lacks `{}`",
        case.name,
        e.message,
        case.msg
    );
    let col = expected_col(case);
    assert_eq!(e.col, col, "{}: column ({e})", case.name);

    // Exact caret rendering: message line, gutter + source line, caret
    // under column `col` (none of the table's sources contain tabs).
    let rendered = e.render(&case.source);
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 3, "{}: render shape:\n{rendered}", case.name);
    assert_eq!(
        lines[0],
        format!("line {}, col {col}: {}", case.line, e.message),
        "{}: header line",
        case.name
    );
    let line_text = case.source.lines().nth(case.line - 1).unwrap();
    assert_eq!(
        lines[1],
        format!("{:>5} | {line_text}", case.line),
        "{}: source line",
        case.name
    );
    assert_eq!(
        lines[2],
        format!("      | {}^", " ".repeat(col - 1)),
        "{}: caret line",
        case.name
    );
}

#[test]
fn every_module_diagnostic_kind_reports_exact_line_column_and_caret() {
    let cases = vec![
        Case {
            name: "unexpected-top-level",
            source: "blorp\n".into(),
            line: 1,
            col_token: Some("blorp"),
            msg: "unexpected top-level line",
        },
        Case {
            name: "bad-global-id",
            source: "global gx tbl size=8\n".into(),
            line: 1,
            col_token: Some("gx"),
            msg: "bad global id",
        },
        Case {
            name: "global-missing-size",
            source: "global g0 tbl sz=8\n".into(),
            line: 1,
            col_token: Some("sz=8"),
            msg: "expected `size=`",
        },
        Case {
            name: "bad-global-size",
            source: "global g0 tbl size=q\n".into(),
            line: 1,
            col_token: Some("q"),
            msg: "bad size",
        },
        Case {
            name: "globals-out-of-order",
            source: "global g1 tbl size=8\n".into(),
            line: 1,
            col_token: None,
            msg: "globals out of order",
        },
        Case {
            name: "bad-entry-function",
            source: "entry f0\n".into(),
            line: 1,
            col_token: Some("f0"),
            msg: "bad entry function",
        },
        Case {
            name: "malformed-func-header",
            source: "func fn0\n".into(),
            line: 1,
            col_token: None,
            msg: "malformed func header",
        },
        Case {
            name: "bad-function-id",
            source: "func f0 main(params=0, regs=1) entry=b0 {\nb0:\n    ret\n}\n".into(),
            line: 1,
            col_token: Some("f0"),
            msg: "bad function id",
        },
        Case {
            name: "func-missing-open-paren",
            source: "func fn0 main params=0 {\n}\n".into(),
            line: 1,
            col_token: None,
            msg: "func header missing `(`",
        },
        Case {
            name: "bad-func-params",
            source: "func fn0 main(params=x, regs=1) entry=b0 {\n}\n".into(),
            line: 1,
            col_token: Some("x"),
            msg: "bad params",
        },
        Case {
            name: "unknown-func-field",
            source: "func fn0 main(params=0, regs=1, foo=3) entry=b0 {\n}\n".into(),
            line: 1,
            col_token: Some("foo=3"),
            msg: "unknown func field",
        },
        Case {
            name: "func-missing-entry",
            source: "func fn0 main(params=0, regs=1) {\n}\n".into(),
            line: 1,
            col_token: None,
            msg: "func header missing `entry=bN {`",
        },
        Case {
            name: "func-missing-params-regs",
            source: "func fn0 main(regs=1) entry=b0 {\n}\n".into(),
            line: 1,
            col_token: None,
            msg: "func header missing params/regs",
        },
        Case {
            name: "functions-out-of-order",
            source: "func fn1 main(params=0, regs=1) entry=b0 {\nb0:\n    ret\n}\n".into(),
            line: 1,
            col_token: None,
            msg: "functions out of order",
        },
        Case {
            name: "unterminated-function",
            source: "func fn0 main(params=0, regs=1) entry=b0 {\nb0:\n    ret\n".into(),
            line: 3,
            col_token: None,
            msg: "unterminated function (missing `}`)",
        },
        Case {
            name: "block-missing-terminator-before-brace",
            source: "func fn0 main(params=0, regs=1) entry=b0 {\nb0:\n}\n".into(),
            line: 3,
            col_token: Some("}"),
            msg: "block missing terminator before `}`",
        },
        Case {
            name: "previous-block-missing-terminator",
            source: "func fn0 main(params=0, regs=1) entry=b0 {\nb0:\nb1:\n    ret\n}\n".into(),
            line: 3,
            col_token: None,
            msg: "previous block missing terminator",
        },
        Case {
            name: "blocks-out-of-order",
            source: "func fn0 main(params=0, regs=1) entry=b0 {\nb1:\n    ret\n}\n".into(),
            line: 2,
            col_token: None,
            msg: "blocks out of order",
        },
        Case {
            name: "instruction-outside-block",
            source: "func fn0 main(params=0, regs=1) entry=b0 {\n    ret\n}\n".into(),
            line: 2,
            col_token: Some("ret"),
            msg: "instruction outside a block",
        },
        Case {
            name: "unrecognized-terminator",
            source: with_term("frob"),
            line: 4,
            col_token: Some("frob"),
            msg: "unrecognized terminator",
        },
        Case {
            name: "bad-terminator-target",
            source: with_term("br bx"),
            line: 4,
            col_token: Some("bx"),
            msg: "bad block id",
        },
        Case {
            name: "condbr-missing-target",
            source: with_term("condbr r0, b0"),
            line: 4,
            col_token: Some("b0"),
            msg: "expected two comma-separated targets",
        },
        Case {
            name: "bad-instruction-id",
            source: with_instr("r0 = const 5    ; ix"),
            line: 4,
            col_token: Some("ix"),
            msg: "bad instruction id",
        },
        Case {
            name: "unterminated-predicate",
            source: with_instr("(r1 r0 = const 5    ; i0"),
            line: 4,
            col_token: None,
            msg: "unterminated predicate",
        },
        Case {
            name: "predicate-missing-question",
            source: with_instr("(r1) r0 = const 5    ; i0"),
            line: 4,
            col_token: Some("r0 = const 5"),
            msg: "expected `?`",
        },
        Case {
            name: "unknown-operation",
            source: with_instr("r0 = blorp 5    ; i0"),
            line: 4,
            col_token: Some("blorp"),
            msg: "unknown operation",
        },
        Case {
            name: "unknown-compare",
            source: with_instr("r0 = cmp.zz r1, 4    ; i0"),
            line: 4,
            col_token: Some("zz"),
            msg: "unknown compare",
        },
        Case {
            name: "bin-missing-operand",
            source: with_instr("r0 = add r1    ; i0"),
            line: 4,
            col_token: Some("r1"),
            msg: "expected two comma-separated operands",
        },
        // Regression: `rr` must not be located at the `r` of the earlier
        // `r0`/`r1` tokens, and the quoted token must be the whole `rr`.
        Case {
            name: "bad-register",
            source: with_instr("r0 = add r1, rr    ; i0"),
            line: 4,
            col_token: Some("rr"),
            msg: "bad register `rr`",
        },
        Case {
            name: "bad-immediate",
            source: with_instr("r0 = mov 5x    ; i0"),
            line: 4,
            col_token: Some("5x"),
            msg: "bad immediate",
        },
        Case {
            name: "bad-constant",
            source: with_instr("r0 = const x    ; i0"),
            line: 4,
            col_token: Some("x"),
            msg: "bad constant",
        },
        Case {
            name: "mem-missing-brackets",
            source: with_instr("r0 = load r1 + 8    ; i0"),
            line: 4,
            col_token: Some("r1 + 8"),
            msg: "expected `[base + offset]`",
        },
        Case {
            name: "mem-missing-plus",
            source: with_instr("r0 = load [r1]    ; i0"),
            line: 4,
            col_token: Some("r1"),
            msg: "expected `base + offset`",
        },
        Case {
            name: "bad-mem-offset",
            source: with_instr("r0 = load [r1 + q]    ; i0"),
            line: 4,
            col_token: Some("q"),
            msg: "bad memory offset",
        },
        Case {
            name: "store-missing-comma",
            source: with_instr("store r1 [r0 + 0]    ; i0"),
            line: 4,
            col_token: Some("r1 [r0 + 0]"),
            msg: "expected two comma-separated operands",
        },
        Case {
            name: "bad-global-ref",
            source: with_instr("r0 = globaladdr x0    ; i0"),
            line: 4,
            col_token: Some("x0"),
            msg: "bad global id",
        },
        Case {
            name: "call-missing-open-paren",
            source: with_instr("r0 = call fn0    ; i0"),
            line: 4,
            col_token: Some("fn0"),
            msg: "call missing `(`",
        },
        Case {
            name: "call-missing-close-paren",
            source: with_instr("r0 = call fn0(r1    ; i0"),
            line: 4,
            col_token: None,
            msg: "call missing `)`",
        },
        Case {
            name: "bad-callee-id",
            source: with_instr("r0 = call f0(r1)    ; i0"),
            line: 4,
            col_token: Some("f0"),
            msg: "bad function id",
        },
        Case {
            name: "unknown-trip-check-field",
            source: with_instr("r0 = trip_check header=b0 in=[] out=[] lift=2    ; i0"),
            line: 4,
            col_token: Some("lift=2"),
            msg: "unknown trip_check field",
        },
        Case {
            name: "trip-check-missing-fields",
            source: with_instr("r0 = trip_check header=b0 in=[] out=[]    ; i0"),
            line: 4,
            col_token: None,
            msg: "trip_check missing fields",
        },
        Case {
            name: "bad-edge-list",
            source: with_instr("r0 = trip_check header=b0 in=e0 out=[] shift=2    ; i0"),
            line: 4,
            col_token: Some("e0"),
            msg: "expected `[e..]`",
        },
        Case {
            name: "bad-edge-id",
            source: with_instr("r0 = trip_check header=b0 in=[ex] out=[] shift=2    ; i0"),
            line: 4,
            col_token: Some("ex"),
            msg: "bad edge id",
        },
        Case {
            name: "unknown-stride-prof-field",
            source: with_instr("stride_prof site=i0 slot=1 wat=2 [r1 + 0]    ; i1"),
            line: 4,
            col_token: Some("wat=2"),
            msg: "unknown stride_prof field",
        },
        Case {
            name: "stride-prof-missing-fields",
            source: with_instr("stride_prof site=i0 slot=1    ; i1"),
            line: 4,
            col_token: None,
            msg: "stride_prof missing fields",
        },
        Case {
            name: "bad-profile-edge-id",
            source: with_instr("profile_edge ee    ; i0"),
            line: 4,
            col_token: Some("ee"),
            msg: "bad edge id `ee`",
        },
    ];
    for case in &cases {
        let e = module_from_string(&case.source)
            .map(|_| ())
            .expect_err(case.name);
        check(case, &e);
    }
}

#[test]
fn single_instruction_diagnostics_carry_caller_line_and_local_column() {
    // `instr_from_string` keeps the caller-supplied line number but
    // locates the column within the single line it was handed.
    let e = instr_from_string("r0 = const 5", 42).expect_err("no id annotation");
    assert_eq!((e.line, e.col), (42, 1), "{e}");
    assert!(e.message.contains("missing `; iN` id annotation"), "{e}");

    let e = instr_from_string("frob everything ; i0", 7).expect_err("no `=`");
    assert_eq!((e.line, e.col), (7, 1), "{e}");
    assert!(e.message.contains("unrecognized instruction"), "{e}");

    let e = instr_from_string("r0 = add r1, rr ; i0", 9).expect_err("bad register");
    assert_eq!(e.line, 9, "{e}");
    // Column 14 is the `rr`, not the `r` of `r0` or `r1`.
    assert_eq!(e.col, 14, "{e}");
}

#[test]
fn caret_alignment_accounts_for_tab_indentation() {
    // A tab-indented instruction: the caret pad must reuse the tab so the
    // caret still lands under the token in a tab-expanding terminal.
    let source =
        "entry fn0\nfunc fn0 main(params=0, regs=4) entry=b0 {\nb0:\n\tr0 = blorp 5\t; i0\n\tret\n}\n";
    let e = module_from_string(source).map(|_| ()).expect_err("blorp");
    assert_eq!(e.line, 4, "{e}");
    let line_text = source.lines().nth(3).unwrap();
    assert_eq!(e.col, line_text.find("blorp").unwrap() + 1, "{e}");
    let caret_line = e.render(source).lines().last().unwrap().to_string();
    assert!(caret_line.ends_with('^'), "{caret_line:?}");
    assert!(
        caret_line.starts_with("      | \t"),
        "tab preserved in pad: {caret_line:?}"
    );
}
