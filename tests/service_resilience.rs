//! Resilience integration tests: duplicated and damaged frames against a
//! real loopback daemon. The server's request-id dedup must make retried
//! and duplicated `merge-profile` deliveries merge exactly once, and the
//! client's seeded backoff must be identical from any thread.

use stride_prefetch::core::{FaultInjector, FaultPlan};
use stride_prefetch::ir::{FuncId, InstrId};
use stride_prefetch::profdb::ProfileEntry;
use stride_prefetch::profiling::{LoadStrideProfile, StrideProfile};
use stride_prefetch::server::{
    backoff_schedule, Client, Request, Response, RetryPolicy, Server, ServerConfig, ServiceConfig,
};

fn entry(total: u64) -> ProfileEntry {
    let mut stride = StrideProfile::new();
    stride.insert(
        FuncId::new(0),
        InstrId::new(1),
        LoadStrideProfile {
            top: vec![(48, total)],
            total_freq: total,
            num_zero_stride: 0,
            num_zero_diff: total,
            total_diffs: total,
        },
    );
    ProfileEntry {
        workload: "resilience".into(),
        module_hash: 0xfeed,
        runs: 1,
        edge_tables: vec![vec![total, 0, 3]],
        stride,
    }
}

fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(key)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("stat `{key}` missing in:\n{stats}"))
}

fn start_server(tag: &str, inject: Option<&str>) -> (Server, std::path::PathBuf) {
    let db_root = std::env::temp_dir().join(format!("svc-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&db_root);
    let mut service = ServiceConfig::new(db_root.clone());
    if let Some(spec) = inject {
        let plan = FaultPlan::parse(spec).expect("fault plan parses");
        service.injector = Some(FaultInjector::new(plan));
    }
    let server = Server::start(ServerConfig::loopback(service)).expect("daemon starts");
    (server, db_root)
}

#[test]
fn duplicated_merge_frame_merges_exactly_once() {
    let (server, db_root) = start_server("dup", None);
    let mut client = Client::connect(server.addr()).expect("connect");

    // Duplicate the first request frame on the wire: the server sees the
    // same merge (same request id) twice back to back.
    client.set_dup_request_nth(Some(1));
    let resp = client
        .call(&Request::MergeProfile {
            entry_text: entry(10).to_text(),
        })
        .expect("merge round trip");
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");

    // A separate merge with a fresh id must still accumulate.
    let resp = client
        .call(&Request::MergeProfile {
            entry_text: entry(5).to_text(),
        })
        .expect("second merge round trip");
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");

    let stats = match client.call(&Request::Stats).expect("stats") {
        Response::Ok(body) => body,
        other => panic!("{other:?}"),
    };
    assert_eq!(stat(&stats, "db-runs"), 2, "duplicate was double-merged");
    assert_eq!(stat(&stats, "dedup-hits"), 1, "{stats}");

    drop(client);
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&db_root);
}

#[test]
fn truncated_response_is_retried_and_merges_exactly_once() {
    // The daemon truncates its first response frame mid-write and drops
    // the connection: the client must retry the merge over a fresh
    // connection with the same request id, and the server must dedup it.
    let (server, db_root) = start_server("trunc", Some("net-trunc=1"));
    let mut client = Client::connect_with(
        server.addr(),
        RetryPolicy {
            base_delay_ms: 1,
            max_delay_ms: 5,
            ..RetryPolicy::default()
        },
    )
    .expect("connect");

    let resp = client
        .call(&Request::MergeProfile {
            entry_text: entry(10).to_text(),
        })
        .expect("merge survives a truncated response");
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    assert!(
        !client.trace().is_empty(),
        "the truncated response should leave a retry trace"
    );

    let stats = match client.call(&Request::Stats).expect("stats") {
        Response::Ok(body) => body,
        other => panic!("{other:?}"),
    };
    assert_eq!(stat(&stats, "db-runs"), 1, "retried merge double-counted");
    assert_eq!(stat(&stats, "dedup-hits"), 1, "{stats}");

    drop(client);
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&db_root);
}

#[test]
fn reset_connection_is_retried_transparently() {
    let (server, db_root) = start_server("reset", Some("net-reset=1"));
    let mut client = Client::connect_with(
        server.addr(),
        RetryPolicy {
            base_delay_ms: 1,
            max_delay_ms: 5,
            ..RetryPolicy::default()
        },
    )
    .expect("connect");

    let resp = client
        .call(&Request::MergeProfile {
            entry_text: entry(7).to_text(),
        })
        .expect("merge survives a reset connection");
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");

    let stats = match client.call(&Request::Stats).expect("stats") {
        Response::Ok(body) => body,
        other => panic!("{other:?}"),
    };
    assert_eq!(stat(&stats, "db-runs"), 1, "{stats}");

    drop(client);
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&db_root);
}

#[test]
fn backoff_schedule_is_identical_from_any_thread() {
    let policy = RetryPolicy {
        max_attempts: 8,
        base_delay_ms: 10,
        max_delay_ms: 2000,
        jitter_seed: 0xdead_beef,
    };
    let reference = backoff_schedule(&policy);
    let schedules: Vec<Vec<u64>> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| scope.spawn(|| backoff_schedule(&policy)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("schedule thread"))
            .collect()
    });
    for s in schedules {
        assert_eq!(
            s, reference,
            "backoff schedule must not depend on the thread"
        );
    }
}
