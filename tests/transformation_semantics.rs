//! Cross-crate semantic guarantees: neither instrumentation nor prefetch
//! insertion may change what a program computes, for every benchmark and
//! every profiling method.

use stride_prefetch::core::{
    instrument, instrument_edges_only, prefetch_with_profiles, run_profiling, PipelineConfig,
    PrefetchConfig, ProfilingMethod, ProfilingVariant,
};
use stride_prefetch::ir::verify_module;
use stride_prefetch::memsim::{CacheHierarchy, HierarchyConfig};
use stride_prefetch::profiling::ProfilerRuntime;
use stride_prefetch::vm::{FlatTiming, NullRuntime, Vm, VmConfig};
use stride_prefetch::workloads::{all_workloads, Scale};

fn plain_result(module: &stride_prefetch::ir::Module, args: &[i64]) -> Option<i64> {
    let mut vm = Vm::new(module, VmConfig::default());
    vm.run(args, &mut FlatTiming, &mut NullRuntime)
        .expect("plain run")
        .return_value
}

#[test]
fn instrumentation_preserves_semantics_for_every_workload_and_method() {
    for w in all_workloads(Scale::Test) {
        let expected = plain_result(&w.module, &w.train_args);
        for method in ProfilingMethod::ALL {
            let inst = instrument(&w.module, method, &PrefetchConfig::paper());
            verify_module(&inst.module).unwrap_or_else(|e| panic!("{} {method}: {e}", w.name));
            let mut vm = Vm::new(&inst.module, VmConfig::default());
            let mut rt = ProfilerRuntime::new(
                &w.module,
                inst.selection.slot_sites(),
                ProfilingVariant::EdgeCheck.stride_config(),
            );
            let mut hierarchy = CacheHierarchy::new(HierarchyConfig::itanium733());
            let got = vm
                .run(&w.train_args, &mut hierarchy, &mut rt)
                .unwrap_or_else(|e| panic!("{} {method}: {e}", w.name))
                .return_value;
            assert_eq!(
                got, expected,
                "{} under {method}: instrumentation changed the result",
                w.name
            );
        }
    }
}

#[test]
fn prefetching_preserves_semantics_for_every_workload() {
    let config = PipelineConfig::default();
    for w in all_workloads(Scale::Test) {
        let expected = plain_result(&w.module, &w.ref_args);
        for variant in [ProfilingVariant::EdgeCheck, ProfilingVariant::NaiveAll] {
            let outcome = run_profiling(&w.module, &w.train_args, variant, &config)
                .unwrap_or_else(|e| panic!("{} {variant}: {e}", w.name));
            let (transformed, _, _) = prefetch_with_profiles(
                &w.module,
                &outcome.edge,
                outcome.source,
                &outcome.stride,
                &config,
            );
            verify_module(&transformed).unwrap_or_else(|e| {
                panic!("{} {variant}: transformed module invalid: {e}", w.name)
            });
            let got = plain_result(&transformed, &w.ref_args);
            assert_eq!(
                got, expected,
                "{} under {variant}: prefetch insertion changed the result",
                w.name
            );
        }
    }
}

#[test]
fn edge_only_instrumentation_counts_consistently() {
    // Flow conservation: for every function executed exactly through
    // calls, the virtual entry counter plus incoming edge counters of each
    // block equal the outgoing edge counters (for non-exit blocks).
    for w in all_workloads(Scale::Test) {
        let inst = instrument_edges_only(&w.module);
        let mut vm = Vm::new(&inst, VmConfig::default());
        let mut rt = ProfilerRuntime::edge_only(&w.module);
        vm.run(&w.train_args, &mut FlatTiming, &mut rt)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let (edges, _, _) = rt.finish();
        for func in &w.module.functions {
            let cfg = stride_prefetch::ir::Cfg::compute(func);
            for block in &func.blocks {
                let inflow: u64 = cfg
                    .preds(block.id)
                    .iter()
                    .filter_map(|&p| cfg.edge_id(p, block.id))
                    .map(|e| edges.count(func.id, e))
                    .sum::<u64>()
                    + if block.id == func.entry {
                        edges.count(
                            func.id,
                            stride_prefetch::profiling::EdgeProfile::entry_edge(&cfg),
                        )
                    } else {
                        0
                    };
                let outflow: u64 = cfg
                    .succs(block.id)
                    .iter()
                    .filter_map(|&s| cfg.edge_id(block.id, s))
                    .map(|e| edges.count(func.id, e))
                    .sum();
                let is_exit = cfg.succs(block.id).is_empty();
                if !is_exit {
                    assert_eq!(
                        inflow, outflow,
                        "{}: flow not conserved at {} of {}",
                        w.name, block.id, func.name
                    );
                }
            }
        }
    }
}

#[test]
fn instrumented_run_costs_more_than_plain() {
    let config = PipelineConfig::default();
    for w in all_workloads(Scale::Test) {
        let outcome = run_profiling(
            &w.module,
            &w.train_args,
            ProfilingVariant::NaiveAll,
            &config,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut vm = Vm::new(&w.module, VmConfig::default());
        let mut hierarchy = CacheHierarchy::new(HierarchyConfig::itanium733());
        let plain = vm
            .run(&w.train_args, &mut hierarchy, &mut NullRuntime)
            .unwrap();
        assert!(
            outcome.run.cycles > plain.cycles,
            "{}: instrumentation added no cost?",
            w.name
        );
        assert!(outcome.run.profiling_cycles > 0, "{}", w.name);
    }
}
