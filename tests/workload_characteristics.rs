//! Fidelity tests: each synthetic benchmark must exhibit the memory
//! behaviour the paper attributes to its namesake (§1, §4). These are the
//! tests that keep the workloads honest when they are tuned.

use stride_prefetch::core::{
    classify_profile, load_mix, run_profiling, run_uninstrumented, ClassifyThresholds,
    PipelineConfig, ProfilingVariant, StrideClass,
};
use stride_prefetch::workloads::{workload_by_name, Scale};

fn profile(
    name: &str,
    args: &[i64],
) -> (
    stride_prefetch::workloads::Workload,
    stride_prefetch::core::ProfileOutcome,
) {
    let w = workload_by_name(name, Scale::Test).unwrap();
    let config = PipelineConfig::default();
    let outcome = run_profiling(&w.module, args, ProfilingVariant::NaiveAll, &config)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    (w, outcome)
}

#[test]
fn parser_strides_are_regular_about_94_percent_of_the_time() {
    // §1: "the address strides for both loads remain the same 94% of the
    // time" — the ref input uses 3% churn, whose free-list dance breaks
    // roughly two strides per event.
    let (w, outcome) = profile("parser", &[2_000, 2, 3, 23]);
    let main_fn = w.module.function_by_name("main").unwrap();
    let best = outcome
        .stride
        .iter()
        .filter(|(f, _, p)| *f == main_fn.id && p.total_freq > 500)
        .map(|(_, _, p)| p.top1_ratio())
        .fold(0.0f64, f64::max);
    assert!(
        (0.86..=0.99).contains(&best),
        "parser dominant-stride ratio {best:.3} out of the ~94% band"
    );
}

#[test]
fn gap_sweep_has_multiple_phased_strides() {
    // §1 / Fig. 2: the GC sweep has several dominant strides that remain
    // constant within phases.
    let (w, outcome) = profile("gap", &[3_000, 2, 33]);
    let main_fn = w.module.function_by_name("main").unwrap();
    // the sweep load is the unique multi-stride *phased* load: select by
    // the phased signal itself (profile iteration order is unspecified,
    // and the random workspace probes also have many "top" strides)
    let sweep = outcome
        .stride
        .iter()
        .filter(|(f, _, p)| *f == main_fn.id && p.total_freq > 1000)
        .filter(|(_, _, p)| p.top.len() >= 3 && p.top1_ratio() < 0.5)
        .max_by(|(_, _, a), (_, _, b)| a.zero_diff_ratio().total_cmp(&b.zero_diff_ratio()))
        .map(|(_, _, p)| p.clone())
        .expect("gap sweep load with multiple dominant strides");
    assert!(sweep.zero_diff_ratio() > 0.6, "sweep must be phased");
    assert_eq!(
        classify_profile(&sweep, &ClassifyThresholds::paper()),
        Some(StrideClass::Pmst)
    );
    // the three allocation size classes (rounded to 16/32/48)
    let strides: Vec<i64> = sweep.top.iter().take(3).map(|&(s, _)| s).collect();
    for expected in [16i64, 32, 48] {
        assert!(
            strides.contains(&expected),
            "missing stride {expected} in {strides:?}"
        );
    }
}

#[test]
fn crafty_probes_have_no_stride_pattern() {
    let (w, outcome) = profile("crafty", &[1_500, 73]);
    let main_fn = w.module.function_by_name("main").unwrap();
    // transposition-table probes: high-volume loads with no class
    let tt_loads: Vec<_> = outcome
        .stride
        .iter()
        .filter(|(f, _, p)| *f == main_fn.id && p.total_freq > 1000)
        .filter(|(_, _, p)| p.top1_ratio() < 0.3)
        .collect();
    assert!(
        !tt_loads.is_empty(),
        "crafty must have high-volume patternless loads"
    );
    for (_, site, p) in tt_loads {
        assert_eq!(
            classify_profile(p, &ClassifyThresholds::paper()),
            None,
            "site {site} should not classify"
        );
    }
}

#[test]
fn mcf_arc_scan_is_strongly_single_strided() {
    let (w, outcome) = profile("mcf", &[2_048, 2, 13]);
    let main_fn = w.module.function_by_name("main").unwrap();
    let ssst = outcome
        .stride
        .iter()
        .filter(|(f, _, p)| *f == main_fn.id && p.total_freq > 1000)
        .filter(|(_, _, p)| {
            p.top1().map(|(s, _)| s) == Some(64)
                && classify_profile(p, &ClassifyThresholds::paper()) == Some(StrideClass::Ssst)
        })
        .count();
    assert!(ssst >= 1, "mcf arc scan must be SSST with stride 64");
}

#[test]
fn every_workload_has_out_loop_traffic() {
    // Fig. 17: a substantial fraction of references must be out-loop.
    let config = PipelineConfig::default();
    for w in stride_prefetch::workloads::all_workloads(Scale::Test) {
        let (run, _) = run_uninstrumented(&w.module, &w.train_args, &config).unwrap();
        let mix = load_mix(&w.module, &run);
        let out_frac = 1.0 - mix.in_loop_fraction();
        assert!(
            (0.10..=0.65).contains(&out_frac),
            "{}: out-loop fraction {out_frac:.2} outside the plausible band",
            w.name
        );
    }
}

#[test]
fn peripheral_helper_loads_classify_as_the_paper_describes() {
    // Fig. 18: out-loop loads with stride properties are mostly PMST.
    let (w, outcome) = profile("twolf", &[400, 2, 123]);
    let helper = w
        .module
        .functions
        .iter()
        .find(|f| f.name.ends_with("_misc"))
        .expect("peripheral helper");
    let mut classes = Vec::new();
    for (site, _) in helper.loads() {
        let class = outcome
            .stride
            .get(helper.id, site)
            .and_then(|p| classify_profile(p, &ClassifyThresholds::paper()));
        classes.push(class);
    }
    assert!(
        classes.contains(&Some(StrideClass::Pmst)),
        "the phased cursor walk must be PMST: {classes:?}"
    );
    assert!(
        classes.contains(&None),
        "the fixed/scattered loads must have no pattern: {classes:?}"
    );
}

#[test]
fn gzip_scan_is_line_friendly() {
    // gzip's sequential scan misses at most once per line: with the
    // 16-byte scan stride, at most one miss per four loads.
    let w = workload_by_name("gzip", Scale::Test).unwrap();
    let config = PipelineConfig::default();
    let (run, mem) = run_uninstrumented(&w.module, &w.train_args, &config).unwrap();
    let miss_rate = (mem.l2_hits + mem.l3_hits + mem.mem_accesses) as f64 / run.loads.max(1) as f64;
    assert!(
        miss_rate < 0.35,
        "gzip should be cache-friendly, miss rate {miss_rate:.2}"
    );
}
