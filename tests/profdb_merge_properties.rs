//! Property tests for the profile database's cross-run merge: counter
//! conservation, commutativity and associativity (up to the order of
//! equal-count strides in a top table), identity against the empty entry,
//! and invariance of the Fig. 5 per-site classification under self-merge.
//! Inputs come from a deterministic splitmix64 PRNG (std-only — this
//! container builds offline), so every run checks the same case set.

use stride_prefetch::core::{classify, classify_profile, ClassifyThresholds, PipelineConfig};
use stride_prefetch::core::{run_profiling, ProfilingVariant};
use stride_prefetch::ir::{FuncId, InstrId};
use stride_prefetch::profdb::{module_hash, ProfileDb, ProfileEntry};
use stride_prefetch::profiling::{LoadStrideProfile, StrideProfile};

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// The profiled sites and counter-table shape two mergeable entries must
/// share (a matching module hash implies it in production).
struct Shape {
    tables: Vec<usize>,
    sites: Vec<(u32, u32)>,
}

fn random_shape(rng: &mut Rng) -> Shape {
    let funcs = rng.range(1, 4) as usize;
    let tables = (0..funcs).map(|_| rng.range(3, 11) as usize).collect();
    let mut sites: Vec<(u32, u32)> = (0..rng.range(1, 5))
        .map(|_| (rng.range(0, funcs as u64) as u32, rng.range(0, 8) as u32))
        .collect();
    sites.sort_unstable();
    sites.dedup();
    Shape { tables, sites }
}

/// Strides are drawn from this pool so a merged top table never exceeds
/// the 8-slot floor the merge keeps: truncation would make association
/// order observable, which is exactly the slack the contract allows.
const STRIDE_POOL: [i64; 8] = [-64, -8, 0, 4, 8, 16, 64, 4096];

fn random_entry(rng: &mut Rng, shape: &Shape) -> ProfileEntry {
    let edge_tables: Vec<Vec<u64>> = shape
        .tables
        .iter()
        .map(|&len| (0..len).map(|_| rng.range(0, 1000)).collect())
        .collect();
    let mut stride = StrideProfile::new();
    for &(f, s) in &shape.sites {
        let picks = rng.range(1, STRIDE_POOL.len() as u64 + 1) as usize;
        let mut pool = STRIDE_POOL.to_vec();
        let mut top = Vec::new();
        for _ in 0..picks {
            let at = rng.range(0, pool.len() as u64) as usize;
            top.push((pool.swap_remove(at), rng.range(1, 10_000)));
        }
        top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let top_total: u64 = top.iter().map(|&(_, c)| c).sum();
        let total_freq = top_total + rng.range(0, 5_000);
        let total_diffs = total_freq.saturating_sub(1);
        stride.insert(
            FuncId::new(f),
            InstrId::new(s),
            LoadStrideProfile {
                top,
                total_freq,
                num_zero_stride: rng.range(0, total_freq + 1),
                num_zero_diff: rng.range(0, total_diffs + 1),
                total_diffs,
            },
        );
    }
    ProfileEntry {
        workload: "prop".to_string(),
        module_hash: 0x5eed,
        runs: rng.range(1, 4),
        edge_tables,
        stride,
    }
}

/// Site counters in a canonical, order-insensitive form: the top table
/// re-sorted by (count desc, stride asc) so equal-count ties compare
/// equal regardless of which merge order produced them.
type CanonSite = (usize, usize, Vec<(u64, i64)>, u64, u64, u64, u64);

fn canonical(e: &ProfileEntry) -> (u64, Vec<Vec<u64>>, Vec<CanonSite>) {
    let mut sites: Vec<CanonSite> = e
        .stride
        .iter()
        .map(|(f, s, p)| {
            let mut top: Vec<(u64, i64)> = p.top.iter().map(|&(s, c)| (c, s)).collect();
            top.sort_by_key(|&(c, s)| (std::cmp::Reverse(c), s));
            (
                f.index(),
                s.index(),
                top,
                p.total_freq,
                p.num_zero_stride,
                p.num_zero_diff,
                p.total_diffs,
            )
        })
        .collect();
    sites.sort_unstable();
    (e.runs, e.edge_tables.clone(), sites)
}

fn merged(a: &ProfileEntry, b: &ProfileEntry) -> ProfileEntry {
    let mut m = a.clone();
    m.merge(b).expect("same-key merge succeeds");
    m
}

fn site_totals(e: &ProfileEntry) -> Vec<(usize, usize, u64, u64, u64, u64, u64)> {
    let mut v: Vec<_> = e
        .stride
        .iter()
        .map(|(f, s, p)| {
            let top_sum: u64 = p.top.iter().map(|&(_, c)| c).sum();
            (
                f.index(),
                s.index(),
                top_sum,
                p.total_freq,
                p.num_zero_stride,
                p.num_zero_diff,
                p.total_diffs,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn merge_conserves_every_counter_total() {
    let mut rng = Rng::new(0xC0115E17);
    for case in 0..32 {
        let shape = random_shape(&mut rng);
        let a = random_entry(&mut rng, &shape);
        let b = random_entry(&mut rng, &shape);
        let m = merged(&a, &b);

        assert_eq!(m.runs, a.runs + b.runs, "case {case}: runs");
        assert_eq!(
            m.edge_total(),
            a.edge_total() + b.edge_total(),
            "case {case}: edge totals"
        );
        let expect: Vec<_> = site_totals(&a)
            .into_iter()
            .zip(site_totals(&b))
            .map(|(sa, sb)| {
                assert_eq!((sa.0, sa.1), (sb.0, sb.1));
                (
                    sa.0,
                    sa.1,
                    sa.2 + sb.2,
                    sa.3 + sb.3,
                    sa.4 + sb.4,
                    sa.5 + sb.5,
                    sa.6 + sb.6,
                )
            })
            .collect();
        assert_eq!(site_totals(&m), expect, "case {case}: per-site counters");
    }
}

#[test]
fn merge_is_commutative_up_to_tie_order() {
    let mut rng = Rng::new(0xAB5EED);
    for case in 0..32 {
        let shape = random_shape(&mut rng);
        let a = random_entry(&mut rng, &shape);
        let b = random_entry(&mut rng, &shape);
        assert_eq!(
            canonical(&merged(&a, &b)),
            canonical(&merged(&b, &a)),
            "case {case}"
        );
    }
}

#[test]
fn merge_is_associative_up_to_tie_order() {
    let mut rng = Rng::new(0xA550C);
    for case in 0..32 {
        let shape = random_shape(&mut rng);
        let a = random_entry(&mut rng, &shape);
        let b = random_entry(&mut rng, &shape);
        let c = random_entry(&mut rng, &shape);
        assert_eq!(
            canonical(&merged(&merged(&a, &b), &c)),
            canonical(&merged(&a, &merged(&b, &c))),
            "case {case}"
        );
    }
}

#[test]
fn empty_entry_is_the_merge_identity() {
    let mut rng = Rng::new(0x1DE47);
    for case in 0..32 {
        let shape = random_shape(&mut rng);
        let a = random_entry(&mut rng, &shape);
        let empty = ProfileEntry {
            workload: a.workload.clone(),
            module_hash: a.module_hash,
            runs: 0,
            edge_tables: a.edge_tables.iter().map(|t| vec![0u64; t.len()]).collect(),
            stride: StrideProfile::new(),
        };
        assert_eq!(merged(&a, &empty), a, "case {case}: right identity");
        assert_eq!(
            canonical(&merged(&empty, &a)),
            canonical(&a),
            "case {case}: left identity"
        );
    }
}

#[test]
fn counter_saturation_never_wraps() {
    let shape = Shape {
        tables: vec![2],
        sites: vec![(0, 0)],
    };
    let mut rng = Rng::new(0x5A7);
    let mut a = random_entry(&mut rng, &shape);
    a.edge_tables[0][0] = u64::MAX - 5;
    let mut huge = a.clone();
    huge.edge_tables[0][0] = u64::MAX;
    let m = merged(&a, &huge);
    assert_eq!(m.edge_tables[0][0], u64::MAX);
}

#[test]
fn self_merge_preserves_per_site_classification() {
    // Doubling every counter preserves the top1/top4/zero-diff ratios the
    // Fig. 5 classifier compares, so a site's class must not move.
    let config = ClassifyThresholds::default();
    let mut rng = Rng::new(0xF165);
    for case in 0..64 {
        let shape = random_shape(&mut rng);
        let a = random_entry(&mut rng, &shape);
        let m = merged(&a, &a);
        for (f, s, p) in a.stride.iter() {
            let doubled = m.stride.get(f, s).expect("site survives self-merge");
            assert_eq!(
                classify_profile(p, &config),
                classify_profile(doubled, &config),
                "case {case}: site {f} {s} changed class under self-merge"
            );
        }
    }
}

/// A read-only strided sweep: loads from a zeroed global it never writes,
/// so two back-to-back calls observe identical memory and a run of the
/// `twice` wrapper is *exactly* the concatenation of two single runs.
fn sweep_modules() -> (stride_prefetch::ir::Module, stride_prefetch::ir::Module) {
    use stride_prefetch::ir::{BinOp, ModuleBuilder, Operand};
    let build = |wrap: bool| {
        let mut mb = ModuleBuilder::new();
        let g = mb.add_global("arr", 1 << 16);
        let f = mb.declare_function("main", 1);
        {
            let mut fb = mb.function(f);
            let base = fb.global_addr(g);
            let sum = fb.mov(0i64);
            fb.counted_loop(fb.param(0), |fb, _| {
                fb.counted_loop(800i64, |fb, i| {
                    let off = fb.mul(i, 64i64);
                    let a = fb.add(base, off);
                    let (v, _) = fb.load(a, 0);
                    fb.bin_to(sum, BinOp::Add, sum, v);
                });
            });
            fb.ret(Some(Operand::Reg(sum)));
        }
        if wrap {
            let w = mb.declare_function("twice", 1);
            let mut fb = mb.function(w);
            let n = fb.param(0);
            fb.call(f, &[Operand::Reg(n)]);
            fb.call(f, &[Operand::Reg(n)]);
            fb.ret(None);
            mb.set_entry(w);
        } else {
            mb.set_entry(f);
        }
        mb.finish()
    };
    (build(false), build(true))
}

#[test]
fn merged_runs_classify_like_the_concatenated_run() {
    // The acceptance check: profiling a workload twice and merging the
    // runs in the database must classify exactly like profiling the
    // concatenated run (the same work executed back to back).
    let config = PipelineConfig::default();
    let (single_mod, concat_mod) = sweep_modules();
    let args = [5i64];

    let single = run_profiling(&single_mod, &args, ProfilingVariant::EdgeCheck, &config)
        .expect("single run profiles");
    let concat = run_profiling(&concat_mod, &args, ProfilingVariant::EdgeCheck, &config)
        .expect("concatenated run profiles");

    let hash = module_hash(&single_mod);
    let entry = ProfileEntry::from_run("sweep", hash, &single.edge, &single.stride);
    let root = std::env::temp_dir().join(format!("profdb-merge-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let db = ProfileDb::open(&root).expect("open db");
    db.merge_store(&entry).expect("first run");
    let merged = db.merge_store(&entry).expect("second run");
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(merged.runs, 2);
    assert_eq!(merged.edge_total(), entry.edge_total() * 2);

    let from_merge = classify(
        &single_mod,
        &merged.stride,
        &merged.edge_profile(),
        single.source,
        &config.prefetch,
    );
    let from_concat = classify(
        &concat_mod,
        &concat.stride,
        &concat.edge,
        concat.source,
        &config.prefetch,
    );
    let key = |c: &stride_prefetch::core::Classification| {
        c.loads
            .iter()
            .map(|l| (l.func, l.site, l.class, l.dominant_stride))
            .collect::<Vec<_>>()
    };
    assert!(!from_concat.loads.is_empty(), "sweep should classify loads");
    assert_eq!(
        key(&from_merge),
        key(&from_concat),
        "merged two-run profile classifies differently from the concatenated run"
    );
    assert_eq!(from_merge.no_pattern, from_concat.no_pattern);
    assert_eq!(from_merge.filtered_low_freq, from_concat.filtered_low_freq);
}
