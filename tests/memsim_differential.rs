//! Differential test: the MRU-way-hint cache against a naive linear-scan
//! LRU reference model. The hint is a lookup shortcut only, so over any
//! trace the two must produce the *identical* hit/miss sequence, the
//! identical eviction sequence, and identical final statistics — at every
//! associativity.

use stride_prefetch::memsim::{Cache, CacheGeometry};

/// Deterministic splitmix64 generator (std-only container).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Naive reference: per-set vector of (tag, last-use tick), linear scan,
/// evict the smallest tick. No fast paths, no hints.
struct NaiveLru {
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
    tick: u64,
}

impl NaiveLru {
    fn new(num_sets: usize, ways: usize) -> Self {
        NaiveLru {
            sets: vec![Vec::new(); num_sets],
            ways,
            tick: 0,
        }
    }

    fn access(&mut self, set: usize, tag: u64) -> bool {
        self.tick += 1;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.0 == tag) {
            e.1 = self.tick;
            return true;
        }
        false
    }

    fn install(&mut self, set: usize, tag: u64) -> Option<u64> {
        self.tick += 1;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.0 == tag) {
            e.1 = self.tick;
            return None;
        }
        if self.sets[set].len() < self.ways {
            self.sets[set].push((tag, self.tick));
            return None;
        }
        let i = (0..self.sets[set].len())
            .min_by_key(|&i| self.sets[set][i].1)
            .expect("nonzero associativity");
        let evicted = self.sets[set][i].0;
        self.sets[set][i] = (tag, self.tick);
        Some(evicted)
    }

    fn invalidate(&mut self, set: usize, tag: u64) {
        self.sets[set].retain(|e| e.0 != tag);
    }
}

const LINE: u64 = 64;
const SETS: u64 = 8;

/// Replays one randomized trace through both models and returns the
/// hit/miss sequence plus (hits, misses) of the real cache, asserting
/// every access result and every eviction matches the reference.
fn run_differential(ways: u32, seed: u64, steps: usize) -> (Vec<bool>, (u64, u64)) {
    let mut cache = Cache::new(CacheGeometry {
        size_bytes: SETS * ways as u64 * LINE,
        ways,
        line_size: LINE,
    });
    let mut naive = NaiveLru::new(SETS as usize, ways as usize);
    let mut rng = Rng(seed);
    let mut miss_seq = Vec::new();
    let mut last = 0u64;
    let (mut ref_hits, mut ref_misses) = (0u64, 0u64);
    for step in 0..steps {
        // Heavy re-touch bias so the MRU hint actually fires, over a
        // line pool ~3x the cache capacity so evictions are frequent.
        let addr = if rng.next().is_multiple_of(3) {
            last
        } else {
            (rng.next() % (SETS * ways as u64 * 3)) * LINE + rng.next() % LINE
        };
        last = addr;
        let line = addr / LINE;
        let set = (line % SETS) as usize;
        match rng.next() % 8 {
            0..=4 => {
                let hit = cache.access(addr);
                let ref_hit = naive.access(set, line);
                assert_eq!(hit, ref_hit, "ways {ways} step {step}: hit/miss diverged");
                if ref_hit {
                    ref_hits += 1;
                } else {
                    ref_misses += 1;
                }
                miss_seq.push(!hit);
            }
            5 | 6 => {
                let evicted = cache.install(addr);
                let ref_evicted = naive.install(set, line);
                assert_eq!(
                    evicted,
                    ref_evicted.map(|t| t * LINE),
                    "ways {ways} step {step}: eviction diverged"
                );
            }
            _ => {
                cache.invalidate(addr);
                naive.invalidate(set, line);
            }
        }
    }
    assert_eq!(
        cache.stats(),
        (ref_hits, ref_misses),
        "ways {ways}: final statistics diverged"
    );
    (miss_seq, cache.stats())
}

#[test]
fn cache_matches_naive_lru_reference_at_every_associativity() {
    for ways in [1u32, 2, 3, 4, 6, 8, 16] {
        for seed in [0x5eed_0001, 0x5eed_0002, 0x5eed_0003] {
            let (miss_seq, (hits, misses)) = run_differential(ways, seed, 4000);
            // The trace mixes accesses with installs/invalidates; both
            // outcomes must actually occur or the diff proves nothing.
            assert!(hits > 0, "ways {ways} seed {seed:#x}: trace never hit");
            assert!(misses > 0, "ways {ways} seed {seed:#x}: trace never missed");
            assert_eq!(
                miss_seq.iter().filter(|&&m| m).count() as u64,
                misses,
                "ways {ways}: miss sequence inconsistent with stats"
            );
        }
    }
}

#[test]
fn identical_traces_produce_identical_miss_sequences() {
    // Replaying the same seed must reproduce the same miss sequence —
    // the differential harness itself is deterministic.
    for ways in [1u32, 2, 4, 8] {
        let (a, _) = run_differential(ways, 0xd1ff_beef, 2500);
        let (b, _) = run_differential(ways, 0xd1ff_beef, 2500);
        assert_eq!(a, b, "ways {ways}: non-deterministic replay");
    }
}

#[test]
fn way_hint_hits_is_a_subset_of_hits_and_fires_on_retouch() {
    // Re-touching one line: after the install, every access is served by
    // the MRU fast path.
    let mut c = Cache::new(CacheGeometry {
        size_bytes: SETS * 2 * LINE,
        ways: 2,
        line_size: LINE,
    });
    c.install(0x100);
    for _ in 0..50 {
        assert!(c.access(0x100));
    }
    assert_eq!(c.stats(), (50, 0));
    assert_eq!(c.way_hint_hits(), 50, "pure re-touch is all fast path");

    // Alternating between two lines of the same set defeats the hint:
    // every hit lands on the non-MRU way, so the slow path serves it.
    let mut c = Cache::new(CacheGeometry {
        size_bytes: SETS * 2 * LINE,
        ways: 2,
        line_size: LINE,
    });
    let a = 0u64;
    let b = SETS * LINE; // same set, different tag
    c.install(a);
    c.install(b);
    for _ in 0..25 {
        assert!(c.access(a));
        assert!(c.access(b));
    }
    let (hits, misses) = c.stats();
    assert_eq!((hits, misses), (50, 0));
    assert_eq!(
        c.way_hint_hits(),
        0,
        "alternating set-mates never fast-path"
    );
}
