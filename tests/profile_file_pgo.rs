//! PGO via profile files: collecting profiles, serializing them to the
//! text format, reading them back, and feeding back must produce exactly
//! the binary that in-memory feedback produces — the cross-compilation
//! workflow §3.2 motivates the one-pass method with.

use stride_prefetch::core::{
    prefetch_with_profiles, run_profiling, PipelineConfig, ProfilingVariant,
};
use stride_prefetch::ir::module_to_string;
use stride_prefetch::profiling::{
    edge_profile_from_text, edge_profile_to_text, stride_profile_from_text, stride_profile_to_text,
};
use stride_prefetch::workloads::{all_workloads, Scale};

#[test]
fn feedback_through_profile_files_is_identical() {
    let config = PipelineConfig::default();
    for w in all_workloads(Scale::Test).into_iter().take(6) {
        let outcome = run_profiling(
            &w.module,
            &w.train_args,
            ProfilingVariant::NaiveAll,
            &config,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));

        // in-memory feedback
        let (direct, _, _) = prefetch_with_profiles(
            &w.module,
            &outcome.edge,
            outcome.source,
            &outcome.stride,
            &config,
        );

        // feedback through the serialized form
        let edge_text = edge_profile_to_text(&outcome.edge, &w.module);
        let stride_text = stride_profile_to_text(&outcome.stride);
        let edge2 = edge_profile_from_text(&edge_text, &w.module)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let stride2 =
            stride_profile_from_text(&stride_text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let (via_files, _, _) =
            prefetch_with_profiles(&w.module, &edge2, outcome.source, &stride2, &config);

        assert_eq!(
            module_to_string(&direct),
            module_to_string(&via_files),
            "{}: file round-trip changed the transformed binary",
            w.name
        );
    }
}

#[test]
fn merged_profiles_from_two_runs_strengthen_the_feedback() {
    // Multi-run PGO: merging the train and a second (different-seed)
    // profile must keep every load classification available from either.
    let config = PipelineConfig::default();
    let w = stride_prefetch::workloads::workload_by_name("mcf", Scale::Test).unwrap();
    let run_a = run_profiling(
        &w.module,
        &[4_000, 2, 11],
        ProfilingVariant::NaiveLoop,
        &config,
    )
    .expect("run a");
    let run_b = run_profiling(
        &w.module,
        &[4_000, 2, 99],
        ProfilingVariant::NaiveLoop,
        &config,
    )
    .expect("run b");

    let mut merged_stride = run_a.stride.clone();
    merged_stride.merge(&run_b.stride);
    let mut merged_edge = run_a.edge.clone();
    merged_edge.merge(&run_b.edge);

    let (_, from_a, _) =
        prefetch_with_profiles(&w.module, &run_a.edge, run_a.source, &run_a.stride, &config);
    let (_, from_merged, _) = prefetch_with_profiles(
        &w.module,
        &merged_edge,
        run_a.source,
        &merged_stride,
        &config,
    );

    let sites = |c: &stride_prefetch::core::Classification| {
        let mut v: Vec<_> = c.loads.iter().map(|l| (l.func, l.site)).collect();
        v.sort();
        v
    };
    // every load classified from run A alone survives the merge
    let merged_sites = sites(&from_merged);
    for s in sites(&from_a) {
        assert!(merged_sites.contains(&s), "merge lost load {s:?}");
    }
}
