//! Loopback tests for the daemon's observability surface: the extended
//! `stats` body must carry per-request latency histograms (denominated in
//! VM cycles, never wall-clock), per-verb and per-error-kind counters,
//! shed/retry tallies, and the queue-depth high-water mark — including
//! under a seeded server-side fault plan.

use std::net::TcpStream;
use stride_prefetch::core::{FaultInjector, FaultPlan, ProfilingVariant};
use stride_prefetch::ir::module_to_string;
use stride_prefetch::server::{
    read_frame, Client, ErrorKind, Request, Response, Server, ServerConfig, ServiceConfig,
};
use stride_prefetch::workloads::{workload_by_name, Scale};

fn ok_body(resp: Response) -> String {
    match resp {
        Response::Ok(body) => body,
        Response::Err { kind, message, .. } => panic!("unexpected error [{kind}]: {message}"),
    }
}

/// The value of a `counter <name> <v>` line in a stats body.
fn counter_value(stats: &str, name: &str) -> Option<u64> {
    let prefix = format!("counter {name} ");
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .and_then(|v| v.parse().ok())
}

#[test]
fn stats_expose_latency_histograms_queue_high_water_and_shed() {
    let w = workload_by_name("mcf", Scale::Test).expect("known workload");
    let db_root = std::env::temp_dir().join(format!("daemon-metrics-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&db_root);
    let mut config = ServerConfig::loopback(ServiceConfig::new(db_root.clone()));
    config.workers = 1;
    config.queue_cap = 1;
    let server = Server::start(config).expect("daemon starts");
    let addr = server.addr();

    // Phase 1: one request per instrumented verb.
    {
        let mut client = Client::connect(addr).expect("connect");
        ok_body(
            client
                .call(&Request::SubmitModule {
                    workload: w.name.to_string(),
                    text: module_to_string(&w.module),
                })
                .expect("submit"),
        );
        ok_body(
            client
                .call(&Request::Profile {
                    workload: w.name.to_string(),
                    variant: ProfilingVariant::EdgeCheck,
                    args: w.train_args.clone(),
                })
                .expect("profile"),
        );
        ok_body(
            client
                .call(&Request::Classify {
                    workload: w.name.to_string(),
                    variant: ProfilingVariant::EdgeCheck,
                    args: w.train_args.clone(),
                })
                .expect("classify"),
        );
        ok_body(
            client
                .call(&Request::Prefetch {
                    workload: w.name.to_string(),
                    variant: ProfilingVariant::EdgeCheck,
                    train_args: w.train_args.clone(),
                    ref_args: w.ref_args.clone(),
                })
                .expect("prefetch"),
        );
    }

    // Phase 2: overflow the single-slot connection queue so the acceptor
    // sheds one connection with `busy`.
    let hold = TcpStream::connect(addr).expect("hold connects");
    std::thread::sleep(std::time::Duration::from_millis(50));
    let fill = TcpStream::connect(addr).expect("fill connects");
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut refused = TcpStream::connect(addr).expect("refused connects");
    let payload = read_frame(&mut refused)
        .expect("read busy frame")
        .expect("frame present");
    let resp = Response::from_bytes(&payload).expect("busy response parses");
    assert!(
        matches!(
            resp,
            Response::Err {
                kind: ErrorKind::Busy,
                ..
            }
        ),
        "{resp:?}"
    );
    drop(hold);
    drop(fill);
    std::thread::sleep(std::time::Duration::from_millis(50));

    // Phase 3: the stats body carries the whole observability surface.
    let mut client = Client::connect(addr).expect("stats client connects");
    let stats = ok_body(client.call(&Request::Stats).expect("stats"));

    for verb in ["submit", "profile", "classify", "prefetch"] {
        assert_eq!(
            counter_value(&stats, &format!("server.req.{verb}")),
            Some(1),
            "verb counter {verb}: {stats}"
        );
    }
    for hist in [
        "server.latency.profile.cycles",
        "server.latency.classify.cycles",
        "server.latency.prefetch.cycles",
    ] {
        assert!(
            stats.contains(&format!("histogram {hist} count 1 sum ")),
            "latency histogram {hist}: {stats}"
        );
    }
    assert_eq!(
        counter_value(&stats, "server.shed"),
        Some(1),
        "shed counter: {stats}"
    );
    // The fill connection sat in the queue while the worker held the
    // first: depth reached at least 1 and the gauge kept the high water.
    let depth_line = stats
        .lines()
        .find(|l| l.starts_with("gauge server.queue_depth "))
        .unwrap_or_else(|| panic!("queue_depth gauge missing: {stats}"));
    let max: u64 = depth_line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("gauge max parses");
    assert!(max >= 1, "queue high water {max}: {stats}");
    // Per-request trace events, clocked by sequence number.
    assert!(stats.contains("trace 0 server.request 0 0"), "{stats}");

    ok_body(client.call(&Request::Shutdown).expect("shutdown"));
    server.join();
    let _ = std::fs::remove_dir_all(&db_root);
}

#[test]
fn stats_count_faulted_requests_and_retried_merges() {
    let w = workload_by_name("mcf", Scale::Test).expect("known workload");
    let db_root =
        std::env::temp_dir().join(format!("daemon-metrics-fault-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&db_root);
    let mut service = ServiceConfig::new(db_root.clone());
    let plan = FaultPlan::parse("seed=7;malformed-ir@mcf").expect("plan parses");
    service.injector = Some(FaultInjector::new(plan));
    let server = Server::start(ServerConfig::loopback(service)).expect("daemon starts");
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    ok_body(
        client
            .call(&Request::SubmitModule {
                workload: "mcf".to_string(),
                text: module_to_string(&w.module),
            })
            .expect("submit faulted"),
    );
    // The fault plan corrupts this workload's IR server-side: the profile
    // request fails with a typed parse error.
    let resp = client
        .call(&Request::Profile {
            workload: "mcf".to_string(),
            variant: ProfilingVariant::EdgeCheck,
            args: w.train_args.clone(),
        })
        .expect("round trip");
    assert!(
        matches!(
            resp,
            Response::Err {
                kind: ErrorKind::Parse,
                ..
            }
        ),
        "{resp:?}"
    );

    // A workload the plan does not target profiles cleanly; its entry
    // feeds a merge whose request frame is delivered twice (client-side
    // duplication fault), which the idempotency id must absorb.
    ok_body(
        client
            .call(&Request::SubmitModule {
                workload: "clean".to_string(),
                text: module_to_string(&w.module),
            })
            .expect("submit clean"),
    );
    let entry_text = ok_body(
        client
            .call(&Request::Profile {
                workload: "clean".to_string(),
                variant: ProfilingVariant::EdgeCheck,
                args: w.train_args.clone(),
            })
            .expect("profile clean"),
    );
    client.set_dup_request_nth(Some(5)); // the next call is the 5th
    ok_body(
        client
            .call(&Request::MergeProfile { entry_text })
            .expect("merge"),
    );
    client.set_dup_request_nth(None);

    let stats = ok_body(client.call(&Request::Stats).expect("stats"));
    assert_eq!(
        counter_value(&stats, "server.error.parse"),
        Some(1),
        "parse-error tally: {stats}"
    );
    assert_eq!(
        counter_value(&stats, "server.req.profile"),
        Some(2),
        "profile verb counter: {stats}"
    );
    assert_eq!(
        counter_value(&stats, "server.merge.retried"),
        Some(1),
        "retried-merge counter: {stats}"
    );
    // Only the clean profile landed a latency observation; the faulted
    // one failed before a run completed.
    assert!(
        stats.contains("histogram server.latency.profile.cycles count 1 sum "),
        "{stats}"
    );

    ok_body(client.call(&Request::Shutdown).expect("shutdown"));
    server.join();
    let _ = std::fs::remove_dir_all(&db_root);
}
