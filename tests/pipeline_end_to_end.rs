//! End-to-end pipeline properties at test scale: the paper's qualitative
//! claims that must hold at any scale.

use stride_prefetch::core::{
    measure_overhead, measure_speedup, run_profiling, ClassifyThresholds, PipelineConfig,
    PrefetchConfig, ProfilingVariant, StrideClass,
};
use stride_prefetch::ir::{BinOp, ModuleBuilder, Operand};
use stride_prefetch::workloads::{workload_by_name, Scale};

fn config() -> PipelineConfig {
    PipelineConfig {
        prefetch: PrefetchConfig {
            thresholds: ClassifyThresholds {
                frequency_threshold: 500, // test-scale inputs are small
                ..ClassifyThresholds::paper()
            },
            ..PrefetchConfig::paper()
        },
        ..PipelineConfig::default()
    }
}

/// A module with one hot strided loop, re-entered so edge-check can see it.
fn strided_module() -> stride_prefetch::ir::Module {
    let mut mb = ModuleBuilder::new();
    let g = mb.add_global("arr", 1 << 21);
    let f = mb.declare_function("main", 1);
    let mut fb = mb.function(f);
    let base = fb.global_addr(g);
    let sum = fb.mov(0i64);
    fb.counted_loop(fb.param(0), |fb, _| {
        fb.counted_loop(8_000i64, |fb, i| {
            let off = fb.mul(i, 96i64);
            let a = fb.add(base, off);
            let (v, _) = fb.load(a, 0);
            fb.bin_to(sum, BinOp::Add, sum, v);
        });
    });
    fb.ret(Some(Operand::Reg(sum)));
    mb.set_entry(f);
    mb.finish()
}

#[test]
fn every_variant_speeds_up_a_strided_loop() {
    let m = strided_module();
    let cfg = config();
    for variant in ProfilingVariant::EVALUATED {
        let out = measure_speedup(&m, &[3], &[4], variant, &cfg)
            .unwrap_or_else(|e| panic!("{variant}: {e}"));
        assert!(
            out.speedup > 1.5,
            "{variant}: expected a large speedup on the pure strided loop, got {:.3}",
            out.speedup
        );
    }
}

#[test]
fn two_pass_and_block_check_agree_with_their_siblings() {
    let m = strided_module();
    let cfg = config();
    let sites = |v: ProfilingVariant| {
        let out = measure_speedup(&m, &[3], &[4], v, &cfg).expect("run");
        let mut s: Vec<_> = out
            .classification
            .loads
            .iter()
            .map(|l| (l.func, l.site, l.class))
            .collect();
        s.sort();
        s
    };
    assert_eq!(
        sites(ProfilingVariant::TwoPass),
        sites(ProfilingVariant::NaiveLoop),
        "two-pass must select what naive-loop selects (§4.1)"
    );
    assert_eq!(
        sites(ProfilingVariant::BlockCheck),
        sites(ProfilingVariant::EdgeCheck),
        "block-check must classify like edge-check"
    );
}

#[test]
fn guarded_profiling_is_cheaper() {
    let m = strided_module();
    let cfg = config();
    let ec = measure_overhead(&m, &[4], ProfilingVariant::EdgeCheck, &cfg).unwrap();
    let nl = measure_overhead(&m, &[4], ProfilingVariant::NaiveLoop, &cfg).unwrap();
    let sec = measure_overhead(&m, &[4], ProfilingVariant::SampleEdgeCheck, &cfg).unwrap();
    assert!(sec.overhead <= ec.overhead + 1e-9);
    assert!(ec.overhead <= nl.overhead + 1e-9);
    assert!(sec.strideprof_fraction < nl.strideprof_fraction);
    assert!(sec.lfu_fraction <= sec.strideprof_fraction);
}

#[test]
fn mcf_has_the_largest_speedup_of_the_headline_benchmarks() {
    // Mid-size inputs: big enough that mcf's arc scan spills the caches,
    // small enough for a debug-build test run.
    let cfg = config();
    let run = |name: &str, train: &[i64], reference: &[i64]| {
        let w = workload_by_name(name, Scale::Test).unwrap();
        measure_speedup(
            &w.module,
            train,
            reference,
            ProfilingVariant::EdgeCheck,
            &cfg,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .speedup
    };
    let mcf = run("mcf", &[8_000, 2, 11], &[24_000, 3, 13]);
    let gap = run("gap", &[8_000, 2, 31], &[20_000, 2, 33]);
    let crafty = run("crafty", &[4_000, 71], &[8_000, 73]);
    assert!(mcf > gap, "mcf {mcf:.3} must beat gap {gap:.3}");
    assert!(mcf > 1.15, "mcf should show a clear win, got {mcf:.3}");
    assert!(
        (crafty - 1.0).abs() < 0.03,
        "crafty must be flat, got {crafty:.3}"
    );
}

#[test]
fn gap_sweep_is_classified_pmst_at_paper_scale_inputs() {
    // Use a mid-size input so the trip-count and frequency filters pass.
    let w = workload_by_name("gap", Scale::Test).unwrap();
    let cfg = config();
    let outcome =
        run_profiling(&w.module, &[3000, 2, 31], ProfilingVariant::NaiveLoop, &cfg).unwrap();
    let (_, classification, _) = stride_prefetch::core::prefetch_with_profiles(
        &w.module,
        &outcome.edge,
        outcome.source,
        &outcome.stride,
        &cfg,
    );
    assert!(
        classification
            .loads
            .iter()
            .any(|l| l.class == StrideClass::Pmst),
        "gap's sweep loads must classify PMST"
    );
}

#[test]
fn wsst_prefetching_can_be_enabled() {
    // perlbmk's churned op walk produces weak strides; with WSST enabled
    // the pipeline must insert conditional prefetches and keep semantics.
    let w = workload_by_name("perlbmk", Scale::Test).unwrap();
    let mut cfg = config();
    cfg.prefetch.enable_wsst_prefetch = true;
    cfg.prefetch.thresholds.frequency_threshold = 100;
    let out = measure_speedup(
        &w.module,
        &w.train_args,
        &w.ref_args,
        ProfilingVariant::NaiveLoop,
        &cfg,
    )
    .unwrap();
    // WSST prefetching may or may not help (the paper found it does not),
    // but it must not be catastrophic.
    assert!(
        out.speedup > 0.9,
        "WSST prefetching tanked: {:.3}",
        out.speedup
    );
}
