//! Property-based tests (proptest) on the core data structures: the LFU
//! profiler, the `strideProf` routine, the cache model, the heap, and the
//! classification thresholds.

use proptest::prelude::*;
use std::collections::HashMap;
use stride_prefetch::core::{classify_profile, PrefetchConfig, StrideClass};
use stride_prefetch::memsim::{Cache, CacheGeometry};
use stride_prefetch::profiling::{
    LfuConfig, LoadStrideProfile, StrideProfConfig, StrideProfData, StrideProfEngine,
};
use stride_prefetch::vm::Heap;

proptest! {
    /// The LFU's reported count for any value never exceeds the true
    /// count, and the total equals the number of insertions.
    #[test]
    fn lfu_counts_are_sound(values in proptest::collection::vec(-50i64..50, 1..400)) {
        let mut lfu = stride_prefetch::profiling::Lfu::new(LfuConfig::standard());
        let mut exact: HashMap<i64, u64> = HashMap::new();
        for &v in &values {
            lfu.insert(v);
            *exact.entry(v).or_insert(0) += 1;
        }
        prop_assert_eq!(lfu.total(), values.len() as u64);
        for (v, c) in lfu.top_values() {
            prop_assert!(c <= exact[&v], "LFU overcounted {} ({} > {})", v, c, exact[&v]);
        }
    }

    /// With a temp buffer large enough to hold every distinct value, the
    /// LFU is exact: the top value matches a true majority element.
    #[test]
    fn lfu_exact_when_buffer_fits(values in proptest::collection::vec(0i64..12, 50..300)) {
        let mut lfu = stride_prefetch::profiling::Lfu::new(LfuConfig {
            temp_entries: 16,
            final_entries: 16,
            ..LfuConfig::standard()
        });
        let mut exact: HashMap<i64, u64> = HashMap::new();
        for &v in &values {
            lfu.insert(v);
            *exact.entry(v).or_insert(0) += 1;
        }
        let top = lfu.top_values();
        let best_exact = exact.values().copied().max().unwrap();
        prop_assert_eq!(top[0].1, best_exact);
    }

    /// strideProf invariants: processed = calls without sampling; the LFU
    /// total plus zero strides plus the first observation equals processed.
    #[test]
    fn strideprof_accounting(addrs in proptest::collection::vec(0u64..10_000, 2..300)) {
        let cfg = StrideProfConfig::plain();
        let mut engine = StrideProfEngine::new();
        let mut data = StrideProfData::new(&cfg);
        for &a in &addrs {
            engine.stride_prof(&cfg, &mut data, a);
        }
        let s = engine.stats;
        prop_assert_eq!(s.calls, addrs.len() as u64);
        prop_assert_eq!(s.processed, s.calls);
        prop_assert_eq!(
            s.lfu_inserts + data.num_zero_stride + 1,
            s.processed,
            "every processed call is first-observation, zero-stride, or LFU"
        );
        prop_assert!(data.num_zero_diff <= data.total_diffs);
        prop_assert!(data.total_diffs < s.lfu_inserts.max(1));
    }

    /// Fine sampling with factor F processes exactly ceil(n / F) calls and
    /// scales constant strides by F.
    #[test]
    fn fine_sampling_scales(f in 2u32..8, stride in 1i64..256, n in 50usize..300) {
        let cfg = StrideProfConfig {
            fine_sample: Some(f),
            ..StrideProfConfig::plain()
        };
        let mut engine = StrideProfEngine::new();
        let mut data = StrideProfData::new(&cfg);
        for i in 0..n as u64 {
            engine.stride_prof(&cfg, &mut data, i * stride as u64);
        }
        prop_assert_eq!(engine.stats.processed, n as u64 / f as u64 + (n as u64 % f as u64).min(1));
        let profile = LoadStrideProfile::from_data(&mut data, &cfg);
        if let Some((top, _)) = profile.top1() {
            prop_assert_eq!(top, stride, "scaled stride must divide back to the original");
        }
    }

    /// The cache never reports a hit for a line it was never given, and
    /// always hits a line just installed.
    #[test]
    fn cache_hit_soundness(addrs in proptest::collection::vec(0u64..(1 << 16), 1..200)) {
        let mut cache = Cache::new(CacheGeometry {
            size_bytes: 2048,
            ways: 2,
            line_size: 64,
        });
        let mut installed: Vec<u64> = Vec::new();
        for &a in &addrs {
            if cache.access(a) {
                prop_assert!(
                    installed.contains(&(a / 64)),
                    "hit for never-installed line {:#x}", a
                );
            }
            cache.install(a);
            installed.push(a / 64);
            prop_assert!(cache.contains(a), "just-installed line missing");
        }
    }

    /// Heap allocations never overlap while both are live.
    #[test]
    fn heap_allocations_disjoint(ops in proptest::collection::vec((1u64..256, proptest::bool::ANY), 1..200)) {
        let mut heap = Heap::new();
        let mut live: Vec<(u64, u64)> = Vec::new(); // (addr, rounded size)
        for (size, also_free) in ops {
            let addr = heap.alloc(size);
            let rounded = size.div_ceil(16) * 16;
            for &(a, s) in &live {
                prop_assert!(
                    addr + rounded <= a || a + s <= addr,
                    "allocation [{:#x}, {:#x}) overlaps live [{:#x}, {:#x})",
                    addr, addr + rounded, a, a + s
                );
            }
            if also_free {
                heap.free(addr, size);
            } else {
                live.push((addr, rounded));
            }
        }
    }

    /// Classification is monotone in the top-1 ratio: raising the dominant
    /// stride's frequency never demotes SSST to a weaker class.
    #[test]
    fn classification_monotone_in_top1(base in 1u64..500, boost in 0u64..2000) {
        let cfg = PrefetchConfig::paper();
        let mk = |top1: u64| LoadStrideProfile {
            top: vec![(64, top1), (8, base)],
            total_freq: top1 + base,
            num_zero_stride: 0,
            num_zero_diff: (top1 + base) / 2,
            total_diffs: top1 + base,
        };
        let weaker = classify_profile(&mk(base), &cfg);
        let stronger = classify_profile(&mk(base + boost), &cfg);
        let rank = |c: Option<StrideClass>| match c {
            Some(StrideClass::Ssst) => 3,
            Some(StrideClass::Pmst) => 2,
            Some(StrideClass::Wsst) => 1,
            None => 0,
        };
        prop_assert!(rank(stronger) >= rank(weaker));
    }

    /// A constant-stride address walk always classifies SSST regardless of
    /// the stride value or walk length (above the minimum).
    #[test]
    fn constant_stride_is_always_ssst(stride in 1i64..4096, n in 40usize..400) {
        let cfg = StrideProfConfig::plain();
        let mut engine = StrideProfEngine::new();
        let mut data = StrideProfData::new(&cfg);
        for i in 0..n as u64 {
            engine.stride_prof(&cfg, &mut data, 0x10_0000 + i * stride as u64);
        }
        let profile = LoadStrideProfile::from_data(&mut data, &cfg);
        prop_assert_eq!(
            classify_profile(&profile, &PrefetchConfig::paper()),
            Some(StrideClass::Ssst)
        );
        prop_assert_eq!(profile.top1().unwrap().0, stride);
    }
}
