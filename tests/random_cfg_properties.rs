//! Property-based tests over *randomly generated CFGs*: the dominator,
//! postdominator and loop analyses must satisfy their defining properties
//! on arbitrary graph shapes, and every generated module must survive the
//! verifier, the printer/parser round-trip, and execution.

use proptest::prelude::*;
use stride_prefetch::ir::{
    module_from_string, module_to_string, verify_module, BlockId, Cfg, CmpOp, DomTree,
    FuncAnalysis, Module, ModuleBuilder, Operand,
};
use stride_prefetch::vm::{FlatTiming, NullRuntime, Vm, VmConfig};

/// Builds a module whose single function has `n` blocks with terminators
/// chosen by `choices` (pairs of target indices; equal pair = plain
/// branch, Ret when the first index is n).
///
/// Block bodies decrement a fuel cell in memory and return when it runs
/// out, so every generated CFG terminates regardless of its cycles.
fn build_random_module(n: usize, choices: &[(usize, usize)]) -> Module {
    let mut mb = ModuleBuilder::new();
    let fuel_global = mb.add_global("fuel", 8);
    let f = mb.declare_function("main", 1);
    let mut fb = mb.function(f);

    // the entry block only initializes the fuel cell (cycles through it
    // would otherwise reset the fuel and never terminate)
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(fb.new_block());
    }
    let ret_block = fb.new_block();
    fb.switch_to(ret_block);
    fb.ret(Some(Operand::Imm(0)));

    let fuel_addr = fb.global_addr(fuel_global);
    fb.store(fb.param(0), fuel_addr, 0);
    fb.br(blocks[0]);

    for (i, &(a, b)) in choices.iter().enumerate().take(n) {
        fb.switch_to(blocks[i]);
        // decrement fuel; bail out to ret when exhausted
        let fa = fb.global_addr(fuel_global);
        let (fuel, _) = fb.load(fa, 0);
        let fuel2 = fb.sub(fuel, 1i64);
        fb.store(fuel2, fa, 0);
        let alive = fb.cmp(CmpOp::Gt, fuel2, 0i64);

        let t1 = if a >= n { ret_block } else { blocks[a] };
        let t2 = if b >= n { ret_block } else { blocks[b] };
        let cont = fb.new_block();
        fb.cond_br(alive, cont, ret_block);
        fb.switch_to(cont);
        if t1 == t2 {
            fb.br(t1);
        } else {
            // branch on fuel parity for data-dependent control flow
            let parity = fb.bin(stride_prefetch::ir::BinOp::And, fuel2, 1i64);
            fb.cond_br(parity, t1, t2);
        }
    }
    mb.set_entry(f);
    mb.finish()
}

fn cfg_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..10).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n + 1, 0..n + 1), n..n + 1),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated modules verify, round-trip through text, and run to
    /// completion with identical results.
    #[test]
    fn random_cfgs_verify_round_trip_and_run((n, choices) in cfg_strategy()) {
        let module = build_random_module(n, &choices);
        verify_module(&module).expect("generated module verifies");

        let text = module_to_string(&module);
        let parsed = module_from_string(&text).expect("parses");
        prop_assert_eq!(module_to_string(&parsed), text);

        let run = |m: &Module| {
            let mut vm = Vm::new(m, VmConfig { fuel: 10_000_000, ..VmConfig::default() });
            vm.run(&[200], &mut FlatTiming, &mut NullRuntime)
                .expect("terminates")
                .instructions
        };
        prop_assert_eq!(run(&module), run(&parsed));
    }

    /// Dominator-tree properties on arbitrary CFGs.
    #[test]
    fn dominator_properties((n, choices) in cfg_strategy()) {
        let module = build_random_module(n, &choices);
        let func = module.function(module.entry);
        let cfg = Cfg::compute(func);
        let dom = DomTree::compute(&cfg, func.entry);

        for b in 0..func.blocks.len() {
            let b = BlockId::new(b as u32);
            // reflexive
            prop_assert!(dom.dominates(b, b));
            if !dom.is_reachable(b) || b == func.entry {
                continue;
            }
            // the entry dominates every reachable block
            prop_assert!(dom.dominates(func.entry, b));
            // the idom exists, is reachable, and dominates b
            let idom = dom.idom(b).expect("reachable non-entry has an idom");
            prop_assert!(dom.is_reachable(idom));
            prop_assert!(dom.dominates(idom, b));
            // the idom dominates every predecessor-dominator of b:
            // every predecessor of b is dominated by idom(b) OR b itself
            // lies on the path (back edges).
            for &p in cfg.preds(b) {
                if dom.is_reachable(p) {
                    prop_assert!(
                        dom.dominates(idom, p) || dom.dominates(b, p),
                        "idom {idom} of {b} does not cover pred {p}"
                    );
                }
            }
        }
    }

    /// Natural-loop properties on arbitrary CFGs.
    #[test]
    fn loop_properties((n, choices) in cfg_strategy()) {
        let module = build_random_module(n, &choices);
        let func = module.function(module.entry);
        let analysis = FuncAnalysis::compute(func);

        for l in analysis.loops.loops() {
            // the header is a member and dominates every member
            prop_assert!(l.contains(l.header));
            for &b in &l.blocks {
                prop_assert!(
                    analysis.dom.dominates(l.header, b),
                    "header {} does not dominate member {b}",
                    l.header
                );
            }
            // every latch is a member with an edge to the header
            for &latch in &l.latches {
                prop_assert!(l.contains(latch));
                prop_assert!(analysis.cfg.succs(latch).contains(&l.header));
            }
            // nesting: the parent strictly contains this loop
            if let Some(parent) = l.parent {
                let p = analysis.loops.get(parent);
                prop_assert!(p.blocks.is_superset(&l.blocks));
                prop_assert!(p.blocks.len() > l.blocks.len());
            }
        }

        // irreducible blocks never report a containing loop
        for b in 0..func.blocks.len() {
            let b = BlockId::new(b as u32);
            if analysis.loops.is_irreducible_block(b) {
                prop_assert_eq!(analysis.loops.loop_of(b), None);
            }
        }
    }

    /// Control equivalence is symmetric and reflexive.
    #[test]
    fn control_equivalence_properties((n, choices) in cfg_strategy()) {
        let module = build_random_module(n, &choices);
        let func = module.function(module.entry);
        let analysis = FuncAnalysis::compute(func);
        let nb = func.blocks.len();
        for a in 0..nb {
            let a = BlockId::new(a as u32);
            prop_assert!(analysis.control_equivalent(a, a));
            for b in 0..nb {
                let b = BlockId::new(b as u32);
                prop_assert_eq!(
                    analysis.control_equivalent(a, b),
                    analysis.control_equivalent(b, a)
                );
            }
        }
    }
}
