//! The textual IR round-trips: print -> parse -> print is a fixed point,
//! parsed modules verify, and they execute identically — checked over
//! every workload module and its instrumented and prefetch-transformed
//! derivatives (the richest IR this repository produces).

use stride_prefetch::core::{
    instrument, prefetch_with_profiles, run_profiling, PipelineConfig, PrefetchConfig,
    ProfilingMethod, ProfilingVariant,
};
use stride_prefetch::ir::{module_from_string, module_to_string, verify_module, Module};
use stride_prefetch::vm::{FlatTiming, NullRuntime, Vm, VmConfig};
use stride_prefetch::workloads::{all_workloads, Scale};

fn assert_round_trip(module: &Module, what: &str) -> Module {
    let text = module_to_string(module);
    let parsed = module_from_string(&text).unwrap_or_else(|e| panic!("{what}: parse failed: {e}"));
    let text2 = module_to_string(&parsed);
    assert_eq!(text, text2, "{what}: print->parse->print not a fixed point");
    verify_module(&parsed).unwrap_or_else(|e| panic!("{what}: parsed module invalid: {e}"));
    parsed
}

#[test]
fn workload_modules_round_trip_and_run_identically() {
    for w in all_workloads(Scale::Test) {
        let parsed = assert_round_trip(&w.module, w.name);
        let run = |m: &Module| {
            let mut vm = Vm::new(m, VmConfig::default());
            vm.run(&w.train_args, &mut FlatTiming, &mut NullRuntime)
                .expect("run")
                .return_value
        };
        assert_eq!(
            run(&w.module),
            run(&parsed),
            "{}: behaviour changed",
            w.name
        );
    }
}

#[test]
fn instrumented_modules_round_trip() {
    for w in all_workloads(Scale::Test).into_iter().take(4) {
        for method in [ProfilingMethod::EdgeCheck, ProfilingMethod::NaiveAll] {
            let inst = instrument(&w.module, method, &PrefetchConfig::paper());
            assert_round_trip(&inst.module, &format!("{} ({method})", w.name));
        }
    }
}

#[test]
fn prefetch_transformed_modules_round_trip() {
    let config = PipelineConfig::default();
    for name in ["mcf", "gap", "parser"] {
        let w = stride_prefetch::workloads::workload_by_name(name, Scale::Test).unwrap();
        let outcome = run_profiling(
            &w.module,
            &w.train_args,
            ProfilingVariant::NaiveAll,
            &config,
        )
        .expect("profiling");
        let (transformed, _, _) = prefetch_with_profiles(
            &w.module,
            &outcome.edge,
            outcome.source,
            &outcome.stride,
            &config,
        );
        assert_round_trip(&transformed, name);
    }
}
