//! Facade crate for the stride-prefetch reproduction of Wu,
//! *Efficient Discovery of Regular Stride Patterns in Irregular Programs
//! and Its Use in Compiler Prefetching* (PLDI 2002).
//!
//! Re-exports every subsystem crate under one roof:
//!
//! * [`ir`] — the compiler IR substrate (CFG, loops, analyses, verifier,
//!   textual round-trip);
//! * [`vm`] — the IR interpreter over simulated memory with cycle
//!   accounting;
//! * [`memsim`] — the Itanium-like cache hierarchy, DTLB and memory-bus
//!   model;
//! * [`profiling`] — the LFU value profiler, `strideProf` runtimes and
//!   frequency profiles;
//! * [`core`] — the paper's contribution: integrated instrumentation,
//!   SSST/PMST/WSST classification and prefetch insertion;
//! * [`workloads`] — the synthetic SPECINT2000 suite;
//! * [`profdb`] — the on-disk cross-run profile database with merge
//!   semantics;
//! * [`server`] — the `strided` daemon, wire protocol and client.
//!
//! See the repository README for a quick start and EXPERIMENTS.md for the
//! paper-vs-measured results.
//!
//! # Example
//!
//! ```
//! use stride_prefetch::core::{measure_speedup, PipelineConfig, ProfilingVariant};
//! use stride_prefetch::workloads::{workload_by_name, Scale};
//!
//! let w = workload_by_name("181.mcf", Scale::Test).expect("known benchmark");
//! let out = measure_speedup(
//!     &w.module,
//!     &w.train_args,
//!     &w.ref_args,
//!     ProfilingVariant::EdgeCheck,
//!     &PipelineConfig::default(),
//! )?;
//! assert!(out.speedup >= 0.9); // test-scale inputs: no regression
//! # Ok::<(), stride_prefetch::core::PipelineError>(())
//! ```

pub use stride_core as core;
pub use stride_ir as ir;
pub use stride_memsim as memsim;
pub use stride_profdb as profdb;
pub use stride_profiling as profiling;
pub use stride_server as server;
pub use stride_vm as vm;
pub use stride_workloads as workloads;
