#!/usr/bin/env bash
# Local CI: build, test, lint, format, and a parallel-repro smoke run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --all --check

echo "== smoke: repro --figure 16 --jobs 2 (test scale) =="
cargo run --release -q -p stride-bench --bin repro -- \
    --figure 16 --scale test --jobs 2

echo "ci.sh: all checks passed"
