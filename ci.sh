#!/usr/bin/env bash
# Local CI: build, test, lint, format, and a parallel-repro smoke run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== test (per package, timed) =="
pkgs=$(cargo metadata --no-deps --format-version 1 |
    python3 -c "import json,sys; print(' '.join(sorted(p['name'] for p in json.load(sys.stdin)['packages'])))")
test_summary=""
for pkg in $pkgs; do
    pkg_start=$(date +%s%N)
    cargo test -q -p "$pkg"
    pkg_ms=$(( ($(date +%s%N) - pkg_start) / 1000000 ))
    test_summary="${test_summary}$(printf '%10sms  %s' "$pkg_ms" "$pkg")"$'\n'
done
echo "-- test timing summary --"
printf '%s' "$test_summary"

echo "== feature matrix: vm-selfprof on/off =="
# The dispatch profiler must compile and pass tests in both configurations;
# the default build carries no trace of it.
cargo test -q -p stride-vm --features vm-selfprof
cargo test -q -p stride-core --features vm-selfprof
cargo build --release -q -p stride-bench --features vm-selfprof --bin selfprof

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy -p stride-vm -p stride-core -p stride-bench --all-targets \
    --features vm-selfprof -- -D warnings

echo "== fmt =="
cargo fmt --all --check

echo "== smoke: repro --figure 16 --jobs 2 (test scale) =="
cargo run --release -q -p stride-bench --bin repro -- \
    --figure 16 --scale test --jobs 2

echo "== smoke: fused vs unfused figure output byte-identical =="
fz=$(mktemp)
nf=$(mktemp)
cargo run --release -q -p stride-bench --bin repro -- \
    --scale test --jobs 2 > "$fz"
cargo run --release -q -p stride-bench --bin repro -- \
    --scale test --jobs 2 --no-fuse > "$nf"
cmp "$fz" "$nf" || { echo "figure output differs between fused and --no-fuse" >&2; exit 1; }
rm -f "$fz" "$nf"

echo "== bench-regression guard: repro wall vs recorded baseline =="
# The newest BENCH_*.json records the paper-scale repro wall time of the
# last data point; a fresh run more than 10% over it fails the build.
guard_json=$(mktemp)
cargo run --release -q -p stride-bench --bin repro -- \
    --scale paper --jobs 1 --bench-json "$guard_json" > /dev/null
baseline_file=$(ls BENCH_*.json | grep -v metrics | sort | tail -1)
python3 - "$guard_json" "$baseline_file" <<'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))["total_wall_s"]
rec = json.load(open(sys.argv[2]))
base = rec.get("repro", rec)["total_wall_s"]
limit = base * 1.10
print(f"repro paper wall: fresh {fresh:.3f}s, baseline {base:.3f}s, limit {limit:.3f}s")
sys.exit(1 if fresh > limit else 0)
EOF
rm -f "$guard_json"

echo "== smoke: metrics snapshot byte-identical across --jobs =="
m1=$(mktemp)
m8=$(mktemp)
cargo run --release -q -p stride-bench --bin repro -- \
    --scale test --jobs 1 --metrics-json "$m1" > /dev/null
cargo run --release -q -p stride-bench --bin repro -- \
    --scale test --jobs 8 --metrics-json "$m8" > /dev/null
cmp "$m1" "$m8" || { echo "metrics snapshot differs between --jobs 1 and 8" >&2; exit 1; }
rm -f "$m1" "$m8"

echo "== smoke: seeded fault campaign (faultsim, test scale) =="
cargo run --release -q -p stride-bench --bin faultsim -- \
    --scale test --seed 42 --jobs 2

echo "== smoke: repro partial results under injected failure =="
inject_out=$(mktemp)
cargo run --release -q -p stride-bench --bin repro -- \
    --figure 16 --scale test --jobs 2 --inject 'seed=3;fuel=100@181.mcf' \
    > "$inject_out"
grep -q '^!! 181.mcf' "$inject_out" \
    || { echo "expected a structured !! diagnostic for 181.mcf" >&2; exit 1; }
rm -f "$inject_out"

echo "== smoke: strided daemon round trips =="
db_dir=$(mktemp -d)
srv_out=$(mktemp)
entry_file=$(mktemp)
cargo run --release -q -p stride-server --bin strided -- \
    serve --addr 127.0.0.1:0 --db "$db_dir" --workers 2 > "$srv_out" &
srv_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$srv_out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "strided did not report its address" >&2; kill "$srv_pid"; exit 1; }
ctl() { cargo run --release -q -p stride-bench --bin stridectl -- --addr "$addr" "$@"; }
submit_out=$(ctl submit mcf --builtin mcf --scale test)
echo "$submit_out" | grep -q '^module ' || { echo "submit failed: $submit_out" >&2; exit 1; }
train=$(echo "$submit_out" | sed -n 's/^built-in [^ ]* train=\([^ ]*\) .*/\1/p')
ref=$(echo "$submit_out" | sed -n 's/.* ref=\(.*\)$/\1/p')
ctl profile mcf --variant edge-check --args "$train" | grep -q '^# profdb v1' \
    || { echo "profile round trip failed" >&2; exit 1; }
ctl classify mcf --variant edge-check --args "$train" | grep -q '^loads ' \
    || { echo "classify round trip failed" >&2; exit 1; }
ctl prefetch mcf --variant edge-check --train "$train" --ref "$ref" | grep -q '^speedup ' \
    || { echo "prefetch round trip failed" >&2; exit 1; }
ctl get-profile mcf > "$entry_file"
grep -q '^runs ' "$entry_file" || { echo "get-profile round trip failed" >&2; exit 1; }
ctl merge-profile --file "$entry_file" | grep -q 'run(s)' \
    || { echo "merge-profile round trip failed" >&2; exit 1; }
ctl stats | grep -q '^requests ' || { echo "stats round trip failed" >&2; exit 1; }
ctl stats | grep -q '^counter server.req.profile ' \
    || { echo "stats body lacks structured metrics" >&2; exit 1; }
ctl top | grep -q '== counters (by value) ==' \
    || { echo "top round trip failed" >&2; exit 1; }
ctl shutdown | grep -q 'shutting down' || { echo "shutdown round trip failed" >&2; exit 1; }
wait "$srv_pid" || { echo "strided exited non-zero" >&2; exit 1; }
grep -q 'shut down cleanly' "$srv_out" \
    || { echo "strided did not shut down cleanly" >&2; exit 1; }
rm -rf "$db_dir" "$srv_out" "$entry_file"

echo "== smoke: crash recovery (SIGKILL, restart, integrity audit) =="
db2=$(mktemp -d)
srv2_out=$(mktemp)
cargo run --release -q -p stride-server --bin strided -- \
    serve --addr 127.0.0.1:0 --db "$db2" --workers 2 > "$srv2_out" &
srv2_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$srv2_out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "strided did not report its address" >&2; kill "$srv2_pid"; exit 1; }
submit_out=$(ctl submit mcf --builtin mcf --scale test)
train=$(echo "$submit_out" | sed -n 's/^built-in [^ ]* train=\([^ ]*\) .*/\1/p')
ctl profile mcf --variant edge-check --args "$train" > /dev/null
ctl profile mcf --variant edge-check --args "$train" > /dev/null
kill -9 "$srv2_pid"
wait "$srv2_pid" 2>/dev/null || true
# The killed store must audit as healthy (a pending WAL tail is fine)...
cargo run --release -q -p stride-profdb --bin profdb -- check --db "$db2" \
    | grep -q '^verdict: ok' || { echo "killed store failed its audit" >&2; exit 1; }
# ...and gc must refuse until recovery has applied the tail.
if cargo run --release -q -p stride-profdb --bin profdb -- gc --db "$db2" --keep mcf >/dev/null 2>&1; then
    gc_refused=no
else
    gc_refused=yes
fi
# (refusal only triggers when the kill left WAL entries pending; either
# way the dry-run listing must work after an explicit recover)
cargo run --release -q -p stride-profdb --bin profdb -- recover --db "$db2" \
    | grep -q '^recovery: ' || { echo "profdb recover failed" >&2; exit 1; }
cargo run --release -q -p stride-profdb --bin profdb -- gc --db "$db2" --keep mcf --dry-run \
    > /dev/null || { echo "gc --dry-run failed after recovery" >&2; exit 1; }
echo "   (gc-before-recovery refused: $gc_refused)"
# Restart on the same directory: both acknowledged merges must survive.
srv3_out=$(mktemp)
cargo run --release -q -p stride-server --bin strided -- \
    serve --addr 127.0.0.1:0 --db "$db2" --workers 2 > "$srv3_out" &
srv3_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$srv3_out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "restarted strided did not report its address" >&2; kill "$srv3_pid"; exit 1; }
ctl submit mcf --builtin mcf --scale test > /dev/null
ctl get-profile mcf | grep -q '^runs 2$' \
    || { echo "acked merges lost across SIGKILL + restart" >&2; exit 1; }
ctl profile mcf --variant edge-check --args "$train" > /dev/null
ctl get-profile mcf | grep -q '^runs 3$' \
    || { echo "recovered store does not accumulate" >&2; exit 1; }
ctl shutdown | grep -q 'shutting down' || { echo "recovered daemon shutdown failed" >&2; exit 1; }
wait "$srv3_pid" || { echo "recovered strided exited non-zero" >&2; exit 1; }
rm -rf "$db2" "$srv2_out" "$srv3_out"

echo "== smoke: service crash-recovery campaign (two seeds, jobs-invariant) =="
svc_a=$(mktemp)
svc_b=$(mktemp)
cargo run --release -q -p stride-bench --bin faultsim -- --service --seed 42 --jobs 2 > "$svc_a"
cargo run --release -q -p stride-bench --bin faultsim -- --service --seed 7 --jobs 4 > /dev/null
cargo run --release -q -p stride-bench --bin faultsim -- --service --seed 42 --jobs 4 > "$svc_b"
diff "$svc_a" "$svc_b" \
    || { echo "service campaign report differs across --jobs" >&2; exit 1; }
rm -f "$svc_a" "$svc_b"

echo "== smoke: sharded cluster — routing, typed shedding, recovery, convergence =="
cl_root=$(mktemp -d)
declare -a shard_addr shard_pid shard_out
for k in 0 1 2; do
    shard_out[$k]=$(mktemp)
    cargo run --release -q -p stride-server --bin strided -- \
        serve --addr 127.0.0.1:0 --db "$cl_root/s$k" --workers 2 > "${shard_out[$k]}" &
    shard_pid[$k]=$!
done
for k in 0 1 2; do
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "${shard_out[$k]}")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "cluster shard $k did not report its address" >&2; exit 1; }
    shard_addr[$k]=$addr
done
rt_out=$(mktemp)
cargo run --release -q -p stride-server --bin strided-router -- \
    serve --addr 127.0.0.1:0 --workers 2 \
    --shard "${shard_addr[0]}" --shard "${shard_addr[1]}" --shard "${shard_addr[2]}" \
    > "$rt_out" &
rt_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$rt_out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "strided-router did not report its address" >&2; exit 1; }
rctl() { cargo run --release -q -p stride-bench --bin stridectl -- --addr "$addr" --retries 1 "$@"; }
# Seed an entry through the router (submit + profile route to mcf's
# owning shard), then fan five keys across the shard map.
submit_out=$(rctl submit mcf --builtin mcf --scale test)
train=$(echo "$submit_out" | sed -n 's/^built-in [^ ]* train=\([^ ]*\) .*/\1/p')
rctl profile mcf --variant edge-check --args "$train" > /dev/null
rctl get-profile mcf > "$cl_root/entry.mcf"
for i in 0 1 2 3 4; do
    sed "s/^workload .*/workload wl$i/" "$cl_root/entry.mcf" > "$cl_root/entry.wl$i"
    rctl merge-profile --file "$cl_root/entry.wl$i" > /dev/null \
        || { echo "healthy-cluster merge wl$i failed" >&2; exit 1; }
done
# SIGKILL shard 1: its key range sheds with a typed error naming the
# shard; every other range keeps serving.
kill -9 "${shard_pid[1]}"
wait "${shard_pid[1]}" 2>/dev/null || true
dead_keys=""
live=0
for i in 0 1 2 3 4; do
    if out=$(rctl merge-profile --file "$cl_root/entry.wl$i" 2>&1); then
        live=$((live + 1))
    else
        echo "$out" | grep -q 'server error \[unavailable\] (shard 1)' \
            || { echo "dead-shard merge wl$i lacked typed unavailable: $out" >&2; exit 1; }
        dead_keys="$dead_keys $i"
    fi
done
[ -n "$dead_keys" ] || { echo "no key routed to the killed shard" >&2; exit 1; }
[ "$live" -gt 0 ] || { echo "live shards stopped serving during the outage" >&2; exit 1; }
# Restart the victim on a fresh port (startup recovery replays its WAL)
# and re-point the router; the outage's queued deltas drain.
shard_out[1]=$(mktemp)
cargo run --release -q -p stride-server --bin strided -- \
    serve --addr 127.0.0.1:0 --db "$cl_root/s1" --workers 2 > "${shard_out[1]}" &
shard_pid[1]=$!
new_addr=""
for _ in $(seq 1 100); do
    new_addr=$(sed -n 's/^listening on //p' "${shard_out[1]}")
    [ -n "$new_addr" ] && break
    sleep 0.1
done
[ -n "$new_addr" ] || { echo "restarted shard 1 did not report its address" >&2; exit 1; }
rctl route-update --shard 1 --replica 0 --to "$new_addr" | grep -q '^routed shard=1' \
    || { echo "route-update failed" >&2; exit 1; }
# One more merge round, then every key — shed or not — must have
# converged to the same three applied merges.
for i in 0 1 2 3 4; do
    rctl merge-profile --file "$cl_root/entry.wl$i" > /dev/null \
        || { echo "post-recovery merge wl$i failed" >&2; exit 1; }
    rctl submit "wl$i" --builtin mcf --scale test > /dev/null
    rctl get-profile "wl$i" | grep -q '^runs 3$' \
        || { echo "wl$i did not converge to 3 merges (acked or queued merge lost)" >&2; exit 1; }
done
rctl stats | grep -q 'lag shard=1 replica=0 queued=0' \
    || { echo "replication lag did not drain after route-update" >&2; exit 1; }
rctl stats --json | python3 -c '
import json, sys
d = json.load(sys.stdin)
assert len(d["shards"]) == 3, d["shards"]
assert d["aggregate"]["db-entries"] == 6, d["aggregate"]
assert d["router"]["counter.router.shed_unavailable"] > 0, d["router"]
'
rctl shutdown | grep -q 'shutting down' || { echo "cluster shutdown failed" >&2; exit 1; }
wait "$rt_pid" || { echo "strided-router exited non-zero" >&2; exit 1; }
for k in 0 1 2; do
    wait "${shard_pid[$k]}" || { echo "cluster shard $k exited non-zero" >&2; exit 1; }
done
cargo run --release -q -p stride-profdb --bin profdb -- check --db "$cl_root/s1" \
    | grep -q '^verdict: ok' || { echo "recovered shard store failed its audit" >&2; exit 1; }
rm -rf "$cl_root" "$rt_out" "${shard_out[@]}"

echo "== smoke: unattended failover — replica SIGKILL mid-traffic, self-announce revival, zero operator verbs =="
uf_root=$(mktemp -d)
# A scratch single daemon supplies a real profile entry for the merge traffic.
scratch_out=$(mktemp)
cargo run --release -q -p stride-server --bin strided -- \
    serve --addr 127.0.0.1:0 --db "$uf_root/scratch" --workers 2 > "$scratch_out" &
scratch_pid=$!
saddr=""
for _ in $(seq 1 100); do
    saddr=$(sed -n 's/^listening on //p' "$scratch_out")
    [ -n "$saddr" ] && break
    sleep 0.1
done
[ -n "$saddr" ] || { echo "scratch daemon did not report its address" >&2; exit 1; }
sctl() { cargo run --release -q -p stride-bench --bin stridectl -- --addr "$saddr" --retries 1 "$@"; }
submit_out=$(sctl submit mcf --builtin mcf --scale test)
train=$(echo "$submit_out" | sed -n 's/^built-in [^ ]* train=\([^ ]*\) .*/\1/p')
sctl profile mcf --variant edge-check --args "$train" > /dev/null
sctl get-profile mcf > "$uf_root/entry.mcf"
sctl shutdown > /dev/null
wait "$scratch_pid" || true
# One shard, three replicas; the third is never touched by the fault and
# doubles as the uninterrupted reference store for the byte-compare.
declare -a uf_pid uf_out
for r in 0 1 2; do
    uf_out[$r]=$(mktemp)
    cargo run --release -q -p stride-server --bin strided -- \
        serve --addr 127.0.0.1:0 --db "$uf_root/r$r" --workers 2 > "${uf_out[$r]}" &
    uf_pid[$r]=$!
done
replicas=""
for r in 0 1 2; do
    a=""
    for _ in $(seq 1 100); do
        a=$(sed -n 's/^listening on //p' "${uf_out[$r]}")
        [ -n "$a" ] && break
        sleep 0.1
    done
    [ -n "$a" ] || { echo "failover replica $r did not report its address" >&2; exit 1; }
    replicas="$replicas${replicas:+,}$a"
done
ufrt_out=$(mktemp)
cargo run --release -q -p stride-server --bin strided-router -- \
    serve --addr 127.0.0.1:0 --workers 2 --shard "$replicas" > "$ufrt_out" &
ufrt_pid=$!
ufaddr=""
for _ in $(seq 1 100); do
    ufaddr=$(sed -n 's/^listening on //p' "$ufrt_out")
    [ -n "$ufaddr" ] && break
    sleep 0.1
done
[ -n "$ufaddr" ] || { echo "failover router did not report its address" >&2; exit 1; }
ufctl() { cargo run --release -q -p stride-bench --bin stridectl -- --addr "$ufaddr" --retries 1 "$@"; }
for i in 0 1 2; do
    sed "s/^workload .*/workload fo$i/" "$uf_root/entry.mcf" > "$uf_root/entry.fo$i"
    ufctl merge-profile --file "$uf_root/entry.fo$i" > /dev/null \
        || { echo "pre-fault merge fo$i failed" >&2; exit 1; }
done
# Mid-traffic SIGKILL of replica 0: its siblings keep acking while its
# share spools as hints. Nobody runs route-update from here on.
kill -9 "${uf_pid[0]}"
wait "${uf_pid[0]}" 2>/dev/null || true
for i in 0 1 2; do
    ufctl merge-profile --file "$uf_root/entry.fo$i" > /dev/null \
        || { echo "merge fo$i during replica outage failed (siblings must keep acking)" >&2; exit 1; }
done
# Restart the victim with --announce: it re-registers itself on a fresh
# port; the router's revival drains hints and re-runs repair.
uf_out[0]=$(mktemp)
cargo run --release -q -p stride-server --bin strided -- \
    serve --addr 127.0.0.1:0 --db "$uf_root/r0" --workers 2 \
    --announce "$ufaddr/0/0" > "${uf_out[0]}" &
uf_pid[0]=$!
healed=""
for _ in $(seq 1 100); do
    st=$(ufctl stats || true)
    if echo "$st" | grep -q 'lag shard=0 replica=0 queued=0' \
        && echo "$st" | grep -q 'health shard=0 replica=0 state=alive'; then
        healed=yes
        break
    fi
    sleep 0.2
done
[ -n "$healed" ] || { echo "cluster did not self-heal after --announce (no operator verbs issued)" >&2; exit 1; }
ufctl health | grep -c ' alive$' | grep -qx 3 \
    || { echo "not every replica reports alive after revival" >&2; exit 1; }
ufctl repair | grep -q 'divergent=false' \
    || { echo "post-revival repair round still reports divergence" >&2; exit 1; }
ufctl shutdown | grep -q 'shutting down' || { echo "failover cluster shutdown failed" >&2; exit 1; }
wait "$ufrt_pid" || { echo "failover router exited non-zero" >&2; exit 1; }
for r in 0 1 2; do
    wait "${uf_pid[$r]}" || { echo "failover replica $r exited non-zero" >&2; exit 1; }
done
# Every store byte-identical to the uninterrupted replica 2.
n=$(ls "$uf_root"/r2/*.profdb 2>/dev/null | wc -l)
[ "$n" -eq 3 ] || { echo "uninterrupted reference store has $n entries, want 3" >&2; exit 1; }
for r in 0 1; do
    for f in "$uf_root"/r2/*.profdb; do
        cmp -s "$f" "$uf_root/r$r/$(basename "$f")" \
            || { echo "replica $r store diverged from the uninterrupted reference: $(basename "$f")" >&2; exit 1; }
    done
done
rm -rf "$uf_root" "$scratch_out" "$ufrt_out" "${uf_out[@]}"

echo "== smoke: cluster chaos campaign (two seeds, jobs-invariant) =="
cl_a=$(mktemp)
cl_b=$(mktemp)
cargo run --release -q -p stride-bench --bin faultsim -- --cluster --seed 42 --jobs 1 > "$cl_a"
cargo run --release -q -p stride-bench --bin faultsim -- --cluster --seed 7 --jobs 4 > /dev/null
cargo run --release -q -p stride-bench --bin faultsim -- --cluster --seed 42 --jobs 4 > "$cl_b"
diff "$cl_a" "$cl_b" \
    || { echo "cluster campaign report differs across --jobs" >&2; exit 1; }
rm -f "$cl_a" "$cl_b"

echo "== smoke: generator determinism (two seeds x two --jobs, byte-identical) =="
gw() { cargo run --release -q -p stride-genwork --bin genwork -- "$@"; }
gw_root=$(mktemp -d)
for seed in 42 0xfeedbeef; do
    gw gen --out "$gw_root/corpus-$seed-j1" --seed "$seed" --count 32 --jobs 1 > /dev/null
    gw gen --out "$gw_root/corpus-$seed-j4" --seed "$seed" --count 32 --jobs 4 > /dev/null
    diff -r "$gw_root/corpus-$seed-j1" "$gw_root/corpus-$seed-j4" \
        || { echo "generated corpus differs across --jobs (seed $seed)" >&2; exit 1; }
    gw campaign --seed "$seed" --count 48 --jobs 1 --out "$gw_root/camp-$seed-j1" > /dev/null
    gw campaign --seed "$seed" --count 48 --jobs 4 --out "$gw_root/camp-$seed-j4" > /dev/null
    cmp "$gw_root/camp-$seed-j1" "$gw_root/camp-$seed-j4" \
        || { echo "campaign report differs across --jobs (seed $seed)" >&2; exit 1; }
done
cmp -s "$gw_root/camp-42-j1" "$gw_root/camp-0xfeedbeef-j1" \
    && { echo "different seeds produced identical campaign reports" >&2; exit 1; }
rm -rf "$gw_root"

echo "== smoke: oracle campaign at acceptance scale (200 workloads) =="
gw campaign --seed 42 --count 200 --jobs 4 | head -1

echo "== smoke: replay driver vs single daemon (obs budgets, no acked-merge loss) =="
rp_db=$(mktemp -d)
rp_out=$(mktemp)
rp_report=$(mktemp)
cargo run --release -q -p stride-server --bin strided -- \
    serve --addr 127.0.0.1:0 --db "$rp_db" --workers 4 > "$rp_out" &
rp_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$rp_out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "replay daemon did not report its address" >&2; kill "$rp_pid"; exit 1; }
cargo run --release -q -p stride-bench --bin stridectl -- --addr "$addr" replay \
    --clients 64 --requests 4000 --threads 8 --workloads 4 --merge-pct 20 \
    --max-shed-frac 0.01 --report "$rp_report" \
    || { echo "replay invariants violated" >&2; exit 1; }
python3 - "$rp_report" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["violations"] == [], d["violations"]
assert d["totals"]["ok"] == d["config"]["requests"], d["totals"]
lat = d["latency_us"]
assert lat["merge"]["count"] + lat["read"]["count"] == d["config"]["requests"], lat
assert all(w["runs"] >= w["acked"] for w in d["workloads"]), d["workloads"]
EOF
ctl shutdown | grep -q 'shutting down' || { echo "replay daemon shutdown failed" >&2; exit 1; }
wait "$rp_pid" || { echo "replay daemon exited non-zero" >&2; exit 1; }
rm -rf "$rp_db" "$rp_out" "$rp_report"

echo "ci.sh: all checks passed"
