#!/usr/bin/env bash
# Local CI: build, test, lint, format, and a parallel-repro smoke run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --all --check

echo "== smoke: repro --figure 16 --jobs 2 (test scale) =="
cargo run --release -q -p stride-bench --bin repro -- \
    --figure 16 --scale test --jobs 2

echo "== smoke: seeded fault campaign (faultsim, test scale) =="
cargo run --release -q -p stride-bench --bin faultsim -- \
    --scale test --seed 42 --jobs 2

echo "== smoke: repro partial results under injected failure =="
inject_out=$(mktemp)
cargo run --release -q -p stride-bench --bin repro -- \
    --figure 16 --scale test --jobs 2 --inject 'seed=3;fuel=100@181.mcf' \
    > "$inject_out"
grep -q '^!! 181.mcf' "$inject_out" \
    || { echo "expected a structured !! diagnostic for 181.mcf" >&2; exit 1; }
rm -f "$inject_out"

echo "ci.sh: all checks passed"
